//! The composed receiver chain: illuminance in, RSS samples out.
//!
//! `Frontend` wires together the stages the OpenVLC board implements in
//! hardware (Fig. 3):
//!
//! ```text
//! illuminance (lux, FoV-integrated by the channel)
//!   → spectral weighting          (receiver × source spectra, Sec. 4.4)
//!   → + shot/thermal noise        (seeded)
//!   → detector response           (sensitivity & optical saturation)
//!   → bandwidth low-pass          (detector response time)
//!   → LM358 gain + rails
//!   → MCP3008 10-bit quantisation
//! ```
//!
//! The output is the "RSS" the paper plots: raw ADC codes (Figs. 15–17)
//! or min–max-normalised traces (Figs. 5, 7, 8, 10, 13, 14).

use crate::adc::Mcp3008;
use crate::amplifier::Lm358;
use crate::noise::NoiseModel;
use crate::receiver::OpticalReceiver;
use palc_dsp::filter::SinglePoleLowPass;
use palc_optics::spectrum::Spectrum;

/// A full receiver frontend.
#[derive(Debug, Clone)]
pub struct Frontend {
    /// The optical detector.
    pub receiver: OpticalReceiver,
    /// The amplifier stage.
    pub amplifier: Lm358,
    /// The ADC stage.
    pub adc: Mcp3008,
    seed: u64,
}

impl Frontend {
    /// Builds a frontend around `receiver` with OpenVLC amp/ADC defaults
    /// and the given noise seed.
    pub fn new(receiver: OpticalReceiver, adc: Mcp3008, seed: u64) -> Self {
        Frontend { receiver, amplifier: Lm358::openvlc(), adc, seed }
    }

    /// Outdoor configuration (2 kS/s), as used in Sec. 5.
    pub fn outdoor(receiver: OpticalReceiver, seed: u64) -> Self {
        Frontend::new(receiver, Mcp3008::openvlc_outdoor(), seed)
    }

    /// Indoor bench configuration (250 S/s).
    pub fn indoor(receiver: OpticalReceiver, seed: u64) -> Self {
        Frontend::new(receiver, Mcp3008::openvlc_indoor(), seed)
    }

    /// Sampling rate of this frontend, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.adc.sample_rate_hz
    }

    /// Builds the stateful per-sample processor for this frontend under a
    /// source with spectrum `spd`. The returned [`FrontendState`] owns the
    /// noise RNG and low-pass memory, so illuminance samples can be fed
    /// one at a time — traces of arbitrary duration run in bounded memory
    /// and online decoding becomes possible. [`Frontend::capture`] is a
    /// thin batch wrapper over this.
    pub fn streamer(&self, spd: &Spectrum) -> FrontendState {
        FrontendState {
            spectral: self.receiver.spectral_factor(spd),
            noise: NoiseModel::new(
                self.receiver.noise_floor_lux(),
                self.receiver.shot_coeff(),
                self.seed,
            ),
            lp: SinglePoleLowPass::new(
                self.receiver.bandwidth_hz().min(self.adc.sample_rate_hz * 0.45),
                self.adc.sample_rate_hz,
            ),
            receiver: self.receiver.clone(),
            amplifier: self.amplifier,
            adc: self.adc,
        }
    }

    /// Processes an illuminance series (lux at the receiver aperture,
    /// sampled at the ADC rate) lit by a source with spectrum `spd`, and
    /// returns raw ADC codes — the RSS trace.
    pub fn capture(&self, illuminance_lux: &[f64], spd: &Spectrum) -> Vec<u16> {
        let mut state = self.streamer(spd);
        illuminance_lux.iter().map(|&e| state.step(e)).collect()
    }

    /// Like [`Frontend::capture`] but returning the codes as `f64` — the
    /// form every decoder in `palc` consumes.
    pub fn capture_f64(&self, illuminance_lux: &[f64], spd: &Spectrum) -> Vec<f64> {
        self.capture(illuminance_lux, spd).into_iter().map(f64::from).collect()
    }
}

/// The running state of a frontend processing one sample at a time:
/// spectral weighting factor, seeded noise RNG, low-pass filter memory,
/// and the (stateless) detector/amplifier/ADC stages.
///
/// Produced by [`Frontend::streamer`]; one illuminance sample in, one ADC
/// code out. Feeding the same sequence of samples as a batch
/// [`Frontend::capture`] call yields the identical code sequence.
#[derive(Debug, Clone)]
pub struct FrontendState {
    spectral: f64,
    noise: NoiseModel,
    lp: SinglePoleLowPass,
    receiver: OpticalReceiver,
    amplifier: Lm358,
    adc: Mcp3008,
}

impl FrontendState {
    /// Processes one illuminance sample (lux) into a 10-bit ADC code.
    pub fn step(&mut self, illuminance_lux: f64) -> u16 {
        let weighted = illuminance_lux.max(0.0) * self.spectral;
        let noisy = (weighted + self.noise.sample(weighted)).max(0.0);
        let detected = self.receiver.respond(noisy);
        let filtered = self.lp.step(detected);
        let v = self.amplifier.amplify(filtered);
        self.adc.quantize(v)
    }

    /// Like [`FrontendState::step`] but returning the code as `f64` — the
    /// form the decoders consume.
    pub fn step_f64(&mut self, illuminance_lux: f64) -> f64 {
        f64::from(self.step(illuminance_lux))
    }

    /// Sampling rate of the underlying ADC, Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.adc.sample_rate_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::PdGain;
    use palc_dsp::stats;

    fn square_lux(base: f64, swing: f64, n: usize, period: usize) -> Vec<f64> {
        (0..n).map(|i| base + if (i / period).is_multiple_of(2) { swing } else { 0.0 }).collect()
    }

    #[test]
    fn stronger_light_gives_higher_codes() {
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G3), 1);
        let dim = fe.capture_f64(&vec![50.0; 500], &Spectrum::white_led());
        let bright = fe.capture_f64(&vec![2000.0; 500], &Spectrum::white_led());
        assert!(stats::mean(&bright) > stats::mean(&dim) + 10.0);
    }

    #[test]
    fn square_wave_survives_the_chain() {
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), 2);
        let lux = square_lux(100.0, 200.0, 2000, 100);
        let rss = fe.capture_f64(&lux, &Spectrum::white_led());
        let depth = stats::modulation_depth(&rss);
        assert!(depth > 0.3, "modulation depth {depth}");
    }

    #[test]
    fn saturated_receiver_flattens_modulation() {
        // G1 saturates at 450 lux: a square wave riding on a 5000 lux
        // pedestal comes out flat — the "links disappear abruptly" failure.
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G1), 3);
        let lux = square_lux(5000.0, 400.0, 2000, 100);
        let rss = fe.capture_f64(&lux, &Spectrum::white_led());
        let depth = stats::modulation_depth(&rss);
        assert!(depth < 0.02, "saturated depth {depth}");
    }

    #[test]
    fn led_survives_the_same_pedestal() {
        let fe = Frontend::outdoor(OpticalReceiver::rx_led(), 3);
        let lux = square_lux(5000.0, 1500.0, 4000, 100);
        let rss = fe.capture_f64(&lux, &Spectrum::daylight());
        let depth = stats::modulation_depth(&rss);
        assert!(depth > 0.05, "LED depth {depth}");
    }

    #[test]
    fn led_cannot_see_small_swings_in_dim_light() {
        // The Fig. 15(b) failure: at 100 lux the swing (tens of lux)
        // drowns in the LED's input-referred noise and quantisation.
        let fe = Frontend::outdoor(OpticalReceiver::rx_led(), 4);
        let lux = square_lux(60.0, 40.0, 4000, 100);
        let rss = fe.capture_f64(&lux, &Spectrum::daylight());
        // Quantised output swing: the LED's sensitivity (0.013) maps a
        // 40 lux swing to ~0.5 normalised units = a fraction of one LSB.
        let (lo, hi) = stats::minmax(&rss);
        assert!(hi - lo <= 3.0, "LED resolved {lo}..{hi}");
    }

    #[test]
    fn pd_g2_sees_the_same_dim_swing() {
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), 4);
        let lux = square_lux(60.0, 40.0, 4000, 100);
        let rss = fe.capture_f64(&lux, &Spectrum::daylight());
        let depth = stats::modulation_depth(&rss);
        assert!(depth > 0.05, "PD depth {depth}");
    }

    #[test]
    fn capture_is_reproducible_per_seed() {
        let fe1 = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), 9);
        let fe2 = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), 9);
        let lux = square_lux(100.0, 100.0, 300, 30);
        assert_eq!(
            fe1.capture(&lux, &Spectrum::white_led()),
            fe2.capture(&lux, &Spectrum::white_led())
        );
    }

    #[test]
    fn codes_stay_in_10_bits() {
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G1), 5);
        let lux: Vec<f64> = (0..1000).map(|i| i as f64 * 50.0).collect();
        for code in fe.capture(&lux, &Spectrum::white_led()) {
            assert!(code < 1024);
        }
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let fe = Frontend::outdoor(OpticalReceiver::rx_led(), 0);
        assert!(fe.capture(&[], &Spectrum::daylight()).is_empty());
    }

    #[test]
    fn streaming_matches_batch_sample_for_sample() {
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), 11);
        let lux = square_lux(120.0, 150.0, 1500, 40);
        let batch = fe.capture(&lux, &Spectrum::white_led());
        let mut state = fe.streamer(&Spectrum::white_led());
        let streamed: Vec<u16> = lux.iter().map(|&e| state.step(e)).collect();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn streamer_runs_in_bounded_memory_over_long_traces() {
        // A million samples through the stateful chain without ever
        // materialising the input or output series.
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), 1);
        let mut state = fe.streamer(&Spectrum::white_led());
        let mut acc = 0u64;
        for i in 0..1_000_000u32 {
            let e = 100.0 + 50.0 * ((i / 100) % 2) as f64;
            acc += u64::from(state.step(e));
        }
        assert!(acc > 0);
        assert!((state.sample_rate_hz() - 2000.0).abs() < 1e-12);
    }
}
