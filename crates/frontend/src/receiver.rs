//! Optical receiver models: OPT101 photodiode and LED-as-receiver.
//!
//! Section 4.4 frames the core receiver trade-off: *“the PD at gain
//! control level G1 saturates at 450 lux … At G3, the PD works for noise
//! floors up to 5000 lux. But outdoor scenarios during the day can easily
//! go above 10 klux. The RX-LED, instead, can work when the noise floor is
//! up to 35,000 lux … the RX-LED is less sensitive than the PD.”*
//!
//! The model is deliberately simple and measurable: a receiver maps input
//! illuminance (lux at its aperture, spectrum-weighted) to a normalised
//! output level
//!
//! ```text
//! out(E) = sensitivity × min(E + dark, saturation_lux)
//! ```
//!
//! so a lux sweep recovers the sensitivity as the low-end slope and the
//! saturation point as the knee — exactly the Fig. 11 table. The FoV,
//! spectral response, input-referred noise, and response-time bandwidth
//! complete the device description; the full sample pipeline lives in
//! [`crate::chain`].

use palc_optics::spectrum::{SpectralResponse, Spectrum};
use palc_optics::FieldOfView;

/// OPT101 transimpedance gain setting. Fig. 3's board exposes three
/// discrete gain levels via the external feedback network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdGain {
    /// High gain: most sensitive, saturates in a medium-lit room.
    G1,
    /// Medium gain.
    G2,
    /// Low gain: usable up to ~5 klux.
    G3,
}

impl PdGain {
    /// All gain levels, high to low.
    pub const ALL: [PdGain; 3] = [PdGain::G1, PdGain::G2, PdGain::G3];

    /// Relative sensitivity, normalised to G1 (Fig. 11).
    pub fn sensitivity(self) -> f64 {
        match self {
            PdGain::G1 => 1.0,
            PdGain::G2 => 0.45,
            PdGain::G3 => 0.089,
        }
    }

    /// Input illuminance at which the output rails, lux (Fig. 11).
    pub fn saturation_lux(self) -> f64 {
        match self {
            PdGain::G1 => 450.0,
            PdGain::G2 => 1200.0,
            PdGain::G3 => 5000.0,
        }
    }
}

/// Which physical device a receiver is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverKind {
    /// TI OPT101 monolithic photodiode at a given gain.
    Photodiode(PdGain),
    /// HLMP-EG08 5 mm red LED in photovoltaic mode.
    RxLed,
}

/// A complete optical front-end description.
#[derive(Debug, Clone)]
pub struct OpticalReceiver {
    kind: ReceiverKind,
    fov: FieldOfView,
    spectral: SpectralResponse,
    /// Relative output per input lux (normalised to PD G1 = 1).
    sensitivity: f64,
    /// Input lux where the output rails.
    saturation_lux: f64,
    /// Input-referred RMS noise, lux. Roughly inversely proportional to
    /// sensitivity: a weak detector needs more light for the same SNR.
    noise_floor_lux: f64,
    /// Shot-noise coefficient: RMS contribution `shot × √E` lux.
    shot_coeff: f64,
    /// −3 dB bandwidth of the detector + transimpedance stage, Hz. Limits
    /// the maximal supported object speed (paper Sec. 6, item 3).
    bandwidth_hz: f64,
    /// Residual output with no light, lux-equivalent. The paper operates
    /// the RX-LED in photovoltaic mode precisely to minimise this.
    dark_lux: f64,
}

impl OpticalReceiver {
    /// The OPT101 photodiode at gain `gain`, bare (wide FoV).
    pub fn opt101(gain: PdGain) -> Self {
        OpticalReceiver {
            kind: ReceiverKind::Photodiode(gain),
            fov: FieldOfView::photodiode_bare(),
            spectral: SpectralResponse::silicon_photodiode(),
            sensitivity: gain.sensitivity(),
            saturation_lux: gain.saturation_lux(),
            // Input-referred noise grows as gain drops: the same output
            // noise divided by a smaller gain.
            noise_floor_lux: 0.10 / gain.sensitivity(),
            shot_coeff: 0.02,
            // OPT101 bandwidth falls with feedback resistance (gain).
            bandwidth_hz: match gain {
                PdGain::G1 => 2_000.0,
                PdGain::G2 => 6_000.0,
                PdGain::G3 => 14_000.0,
            },
            dark_lux: 0.3,
        }
    }

    /// The red LED as a receiver, photovoltaic mode: narrow FoV, narrow
    /// optical band, low sensitivity, extreme saturation headroom.
    pub fn rx_led() -> Self {
        OpticalReceiver {
            kind: ReceiverKind::RxLed,
            fov: FieldOfView::rx_led(),
            spectral: SpectralResponse::red_led_detector(),
            sensitivity: 0.013,
            saturation_lux: 35_000.0,
            // Sized between the paper's two boundary cases at 25 cm: a
            // ~0.5 lux aperture swing (100 lux overcast dusk, Fig. 15(b))
            // must drown below 3σ, while a ~2.3 lux swing (450 lux,
            // Fig. 15(a)) must clear it. Also larger than any PD gain's
            // floor — the LED is the *less sensitive* device (Fig. 11).
            noise_floor_lux: 0.35,
            shot_coeff: 0.03,
            // LED junctions are slow detectors; photovoltaic mode slower.
            bandwidth_hz: 900.0,
            dark_lux: 0.05, // photovoltaic mode minimises dark current
        }
    }

    /// Replaces the field of view (used by the aperture cap of Fig. 16).
    pub fn with_fov(mut self, fov: FieldOfView) -> Self {
        self.fov = fov;
        self
    }

    /// Scales the input-referred noise floor (for sensitivity analyses).
    pub fn with_noise_floor(mut self, lux: f64) -> Self {
        self.noise_floor_lux = lux.max(0.0);
        self
    }

    /// Device identity.
    pub fn kind(&self) -> ReceiverKind {
        self.kind
    }

    /// Short label for tables and logs: `PD(G1)`, `PD(G2)`, `PD(G3)`, `LED`.
    pub fn label(&self) -> &'static str {
        match self.kind {
            ReceiverKind::Photodiode(PdGain::G1) => "PD(G1)",
            ReceiverKind::Photodiode(PdGain::G2) => "PD(G2)",
            ReceiverKind::Photodiode(PdGain::G3) => "PD(G3)",
            ReceiverKind::RxLed => "LED",
        }
    }

    /// Angular acceptance.
    pub fn fov(&self) -> FieldOfView {
        self.fov
    }

    /// Spectral response curve.
    pub fn spectral(&self) -> &SpectralResponse {
        &self.spectral
    }

    /// Relative sensitivity (output per lux, PD G1 = 1).
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Saturating input level, lux.
    pub fn saturation_lux(&self) -> f64 {
        self.saturation_lux
    }

    /// Input-referred RMS noise floor, lux.
    pub fn noise_floor_lux(&self) -> f64 {
        self.noise_floor_lux
    }

    /// Shot-noise coefficient (RMS lux contribution per √lux).
    pub fn shot_coeff(&self) -> f64 {
        self.shot_coeff
    }

    /// Detector bandwidth, Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.bandwidth_hz
    }

    /// Spectral efficiency for light of the given SPD, relative to the
    /// white-LED reference the Fig. 11 sensitivities were calibrated
    /// against.
    pub fn spectral_factor(&self, spd: &Spectrum) -> f64 {
        let reference = self.spectral.overlap(&Spectrum::white_led());
        if reference <= 0.0 {
            return 0.0;
        }
        self.spectral.overlap(spd) / reference
    }

    /// Noise-free static response: normalised output for a steady input of
    /// `e_lux` (already spectrum-weighted). The two-parameter curve whose
    /// slope and knee the characterisation experiment measures.
    pub fn respond(&self, e_lux: f64) -> f64 {
        let input = (e_lux.max(0.0) + self.dark_lux).min(self.saturation_lux);
        self.sensitivity * input
    }

    /// True when a steady ambient of `e_lux` rails the device — the
    /// “links disappear abruptly” failure of Sec. 3.
    pub fn is_saturated_by(&self, e_lux: f64) -> bool {
        e_lux + self.dark_lux >= self.saturation_lux
    }

    /// Smallest modulation (lux swing) distinguishable from noise at the
    /// given ambient, using a conservative 3σ criterion; `None` when the
    /// device is saturated (no modulation survives the rail).
    pub fn min_detectable_swing_lux(&self, ambient_lux: f64) -> Option<f64> {
        if self.is_saturated_by(ambient_lux) {
            return None;
        }
        let sigma = (self.noise_floor_lux.powi(2) + self.shot_coeff.powi(2) * ambient_lux).sqrt();
        Some(3.0 * sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_parameters_are_wired_through() {
        assert_eq!(OpticalReceiver::opt101(PdGain::G1).saturation_lux(), 450.0);
        assert_eq!(OpticalReceiver::opt101(PdGain::G2).saturation_lux(), 1200.0);
        assert_eq!(OpticalReceiver::opt101(PdGain::G3).saturation_lux(), 5000.0);
        assert_eq!(OpticalReceiver::rx_led().saturation_lux(), 35_000.0);
        assert_eq!(OpticalReceiver::opt101(PdGain::G1).sensitivity(), 1.0);
        assert_eq!(OpticalReceiver::opt101(PdGain::G2).sensitivity(), 0.45);
        assert_eq!(OpticalReceiver::opt101(PdGain::G3).sensitivity(), 0.089);
        assert_eq!(OpticalReceiver::rx_led().sensitivity(), 0.013);
    }

    #[test]
    fn response_is_linear_then_flat() {
        let rx = OpticalReceiver::opt101(PdGain::G1);
        let low = rx.respond(100.0);
        let mid = rx.respond(200.0);
        // Linear region: doubling input (minus dark) ~doubles output.
        assert!((mid / low - 2.0).abs() < 0.01);
        // Beyond saturation the output stops growing.
        assert_eq!(rx.respond(450.0), rx.respond(10_000.0));
    }

    #[test]
    fn saturation_ordering_matches_fig11() {
        // G1 rails in a medium room; the LED survives full daylight.
        let room = 450.0;
        assert!(OpticalReceiver::opt101(PdGain::G1).is_saturated_by(room));
        assert!(!OpticalReceiver::opt101(PdGain::G3).is_saturated_by(room));
        assert!(!OpticalReceiver::rx_led().is_saturated_by(15_000.0));
        assert!(OpticalReceiver::rx_led().is_saturated_by(40_000.0));
    }

    #[test]
    fn led_needs_bigger_swings_than_pd() {
        // Sensitivity gap: at the 100 lux dusk of Fig. 15(b)/16, the LED's
        // minimum detectable swing exceeds every unsaturated PD gain's ->
        // the LED link dies first in dim scenes.
        let led = OpticalReceiver::rx_led().min_detectable_swing_lux(100.0).unwrap();
        for gain in PdGain::ALL {
            let pd = OpticalReceiver::opt101(gain).min_detectable_swing_lux(100.0);
            if let Some(pd) = pd {
                if gain != PdGain::G3 {
                    assert!(led > pd, "led {led} vs {gain:?} {pd}");
                }
            }
        }
    }

    #[test]
    fn saturated_device_detects_nothing() {
        let rx = OpticalReceiver::opt101(PdGain::G1);
        assert!(rx.min_detectable_swing_lux(6000.0).is_none());
    }

    #[test]
    fn pd_fov_is_wide_led_fov_is_narrow() {
        let pd = OpticalReceiver::opt101(PdGain::G2);
        let led = OpticalReceiver::rx_led();
        assert!(pd.fov().half_angle_deg() > 45.0);
        assert!(led.fov().half_angle_deg() < 15.0);
    }

    #[test]
    fn spectral_factor_is_one_for_reference_source() {
        let rx = OpticalReceiver::rx_led();
        let f = rx.spectral_factor(&Spectrum::white_led());
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn led_rejects_deep_red_light() {
        let rx = OpticalReceiver::rx_led();
        let deep_red = Spectrum::gaussian(730.0, 10.0);
        assert!(rx.spectral_factor(&deep_red) < 0.1);
    }

    #[test]
    fn labels_match_fig11_rows() {
        assert_eq!(OpticalReceiver::opt101(PdGain::G1).label(), "PD(G1)");
        assert_eq!(OpticalReceiver::opt101(PdGain::G2).label(), "PD(G2)");
        assert_eq!(OpticalReceiver::opt101(PdGain::G3).label(), "PD(G3)");
        assert_eq!(OpticalReceiver::rx_led().label(), "LED");
    }

    #[test]
    fn with_fov_overrides_acceptance() {
        let capped = OpticalReceiver::opt101(PdGain::G2)
            .with_fov(FieldOfView::from_aperture_tube(0.012, 0.028));
        assert!(capped.fov().half_angle_deg() < 25.0);
    }

    #[test]
    fn negative_input_clamps_to_dark() {
        let rx = OpticalReceiver::opt101(PdGain::G1);
        assert_eq!(rx.respond(-10.0), rx.respond(0.0));
    }
}
