//! Fixture tests: every rule in both directions (fires on the bad
//! fixture, silent on the good one), plus the annotation grammar's
//! failure modes. Fixtures live under `tests/fixtures/` — a directory
//! the tree walker skips precisely because these files *contain*
//! violations on purpose.

use palc_lint::{lint_source, Violation, ANNOTATION_RULE};

/// Lints a fixture as if it sat at `path` in the repo (rule scoping is
/// path-prefix based, so the virtual path selects which rules apply).
fn run(path: &str, fixture: &str) -> Vec<Violation> {
    lint_source(path, fixture)
}

fn lines_of(violations: &[Violation], rule: &str) -> Vec<u32> {
    violations.iter().filter(|v| v.rule == rule).map(|v| v.line).collect()
}

#[test]
fn hot_path_bad_fires_inside_region_only() {
    let v = run("crates/x/src/kernel.rs", include_str!("fixtures/hot-path/bad.rs"));
    assert_eq!(lines_of(&v, "hot-path-transcendental"), vec![9, 10, 11, 11]);
    // The acos() outside the region (line 4) is untouched.
    assert!(v.iter().all(|v| v.rule == "hot-path-transcendental"));
}

#[test]
fn hot_path_good_is_clean() {
    let v = run("crates/x/src/kernel.rs", include_str!("fixtures/hot-path/good.rs"));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn determinism_bad_fires_in_scoped_path() {
    let v = run("crates/core/src/stream.rs", include_str!("fixtures/determinism/bad.rs"));
    assert_eq!(lines_of(&v, "determinism"), vec![3, 4, 7, 8, 8]);
}

#[test]
fn determinism_good_is_clean_and_test_mod_is_exempt() {
    let v = run("crates/core/src/stream.rs", include_str!("fixtures/determinism/good.rs"));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn determinism_is_scoped_to_result_producing_paths() {
    // The same nondeterminism in a bench crate is out of scope.
    let v = run("crates/bench/src/soak.rs", include_str!("fixtures/determinism/bad.rs"));
    assert!(lines_of(&v, "determinism").is_empty());
}

#[test]
fn panic_audit_bad_fires_without_justification() {
    let v = run("crates/core/src/server.rs", include_str!("fixtures/panic-audit/bad.rs"));
    assert_eq!(lines_of(&v, "panic-audit"), vec![4, 6, 8, 14]);
}

#[test]
fn panic_audit_good_honours_invariant_comments() {
    let v = run("crates/core/src/server.rs", include_str!("fixtures/panic-audit/good.rs"));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn float_eq_bad_fires_on_literal_and_path_operands() {
    let v = run("crates/x/src/lib.rs", include_str!("fixtures/float-eq/bad.rs"));
    assert_eq!(lines_of(&v, "float-eq"), vec![4, 8, 12]);
}

#[test]
fn float_eq_good_is_clean_with_allow_and_to_bits() {
    let v = run("crates/x/src/lib.rs", include_str!("fixtures/float-eq/good.rs"));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn lock_hygiene_bad_fires_on_unwrap_and_expect() {
    let v = run("crates/x/src/lib.rs", include_str!("fixtures/lock-hygiene/bad.rs"));
    assert_eq!(lines_of(&v, "lock-hygiene"), vec![6, 11]);
}

#[test]
fn lock_hygiene_good_is_clean_with_recovering_helper() {
    let v = run("crates/x/src/lib.rs", include_str!("fixtures/lock-hygiene/good.rs"));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn malformed_annotations_are_each_reported() {
    let v = run("crates/x/src/lib.rs", include_str!("fixtures/annotations/malformed.rs"));
    // Missing reason (4), unknown rule (8), unused allow (12), unknown
    // directive (16), unmatched end marker (20).
    assert_eq!(lines_of(&v, ANNOTATION_RULE), vec![4, 8, 12, 16, 20]);
    // A malformed allow suppresses nothing: the float-eq finding on its
    // line still fires.
    assert_eq!(lines_of(&v, "float-eq"), vec![4]);
}

#[test]
fn diagnostics_carry_file_line_rule_and_hint() {
    let v = run("crates/x/src/lib.rs", include_str!("fixtures/float-eq/bad.rs"));
    let first = &v[0];
    let rendered = first.to_string();
    assert!(rendered.contains("crates/x/src/lib.rs:4"), "{rendered}");
    assert!(rendered.contains("[float-eq]"), "{rendered}");
    assert!(rendered.contains("hint:"), "{rendered}");
}
