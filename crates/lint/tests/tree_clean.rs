//! Meta-test: the live tree is lint-clean, and the hot-path markers the
//! kernel tier relies on are actually present. This is the in-repo twin
//! of the CI gate (`cargo run --release -p palc_lint -- --check`): a PR
//! that introduces an unannotated violation fails here first.

use std::path::{Path, PathBuf};

use palc_lint::lint_tree;

fn workspace_root() -> PathBuf {
    // crates/lint → crates → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn live_tree_is_lint_clean() {
    let report = lint_tree(&workspace_root()).expect("tree walk");
    assert!(report.files > 50, "walker should see the whole workspace, saw {}", report.files);
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.violations.is_empty(),
        "the tree must be lint-clean; fix or annotate:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn kernel_hot_paths_are_marked() {
    // The transcendental rule is region-gated; losing the markers would
    // silently disarm it on the code it was written for.
    let root = workspace_root();
    for (file, expect_regions) in
        [("crates/core/src/channel.rs", 2), ("crates/scene/src/object.rs", 1)]
    {
        let source = std::fs::read_to_string(root.join(file)).expect(file);
        let opens = source.matches("// palc_lint: hot-path").count();
        let closes = source.matches("// palc_lint: end hot-path").count();
        assert_eq!(opens, expect_regions, "{file}: hot-path markers");
        assert_eq!(closes, expect_regions, "{file}: end markers");
    }
}
