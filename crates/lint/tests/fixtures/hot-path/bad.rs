// Fixture: transcendental calls inside a marked hot-path region.

pub fn build_table(theta: f64) -> f64 {
    theta.acos() // fine: outside any region
}

// palc_lint: hot-path
pub fn tick(x: f64, y: f64) -> f64 {
    let r = x.sqrt(); // violation
    let a = (y / r).atan(); // violation
    a.powf(2.0) + r.sin() // violations
}
// palc_lint: end hot-path
