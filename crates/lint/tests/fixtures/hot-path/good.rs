// Fixture: a clean hot-path region — pure table lookups — with the
// transcendental work done outside it.

pub fn build_table(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64).sqrt()).collect()
}

// palc_lint: hot-path
pub fn tick(table: &[f64], ix: usize) -> f64 {
    // A mention of sqrt in a comment, or "x.sqrt()" in a string, is not
    // a call.
    let label = "uses sqrt() offline";
    let _ = label;
    table.get(ix).copied().unwrap_or(0.0)
}
// palc_lint: end hot-path
