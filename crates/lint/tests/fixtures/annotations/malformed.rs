// Fixture: every way an annotation can be wrong.

pub fn missing_reason(x: f64) -> bool {
    x == 0.0 // palc_lint: allow(float-eq)
}

pub fn unknown_rule() {
    // palc_lint: allow(no-such-rule) -- misremembered name
    let _ = 1;
}

// palc_lint: allow(float-eq) -- nothing on the next line compares floats
pub fn unused_allow() {}

pub fn unknown_directive() {
    // palc_lint: hot-loop
    let _ = 2;
}

// palc_lint: end hot-path
