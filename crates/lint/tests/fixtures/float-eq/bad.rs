// Fixture: bare float equality without annotation.

pub fn is_zero(x: f64) -> bool {
    x == 0.0 // violation
}

pub fn is_full(gain: f32) -> bool {
    1.0 == gain // violation (literal on the left)
}

pub fn is_inf(x: f64) -> bool {
    x == f64::INFINITY // violation (f64:: path operand)
}
