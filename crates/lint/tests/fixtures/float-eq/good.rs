// Fixture: tolerated, annotated, or bit-exact float comparisons.

pub fn is_zero(x: f64) -> bool {
    x == 0.0 // palc_lint: allow(float-eq) -- exact-zero sentinel
}

pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn byte_identical(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

#[cfg(test)]
mod tests {
    #[test]
    fn byte_identity_tests_compare_exactly() {
        assert!(super::is_zero(0.0) == (0.0 == 0.0));
    }
}
