// Fixture: the deterministic shape of the same path — ordered map, no
// wall clock, and test-only nondeterminism stays exempt.

use std::collections::BTreeMap;

pub fn decode(samples: &[f64]) -> Vec<u64> {
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, &s) in samples.iter().enumerate() {
        seen.insert(s.to_bits(), i);
    }
    seen.keys().copied().collect()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_harness_may_use_the_wall_clock() {
        let _ = Instant::now();
    }
}
