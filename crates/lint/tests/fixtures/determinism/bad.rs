// Fixture: ambient nondeterminism in a result-producing path.

use std::collections::HashMap;
use std::time::Instant;

pub fn decode(samples: &[f64]) -> Vec<u64> {
    let started = Instant::now();
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for (i, &s) in samples.iter().enumerate() {
        seen.insert(s.to_bits(), i);
    }
    let _ = started;
    seen.keys().copied().collect()
}
