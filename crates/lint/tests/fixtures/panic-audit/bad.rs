// Fixture: unjustified panic sites in a cross-thread module.

pub fn service(queue: &mut Vec<u64>, lanes: &[u64]) -> u64 {
    let head = queue.pop().unwrap(); // violation: no justification
    if lanes.is_empty() {
        panic!("no lanes"); // violation
    }
    head + lanes[0] // violation: direct indexing
}

pub fn stale_comment(v: &[u8]) -> u8 {
    // invariant: talks about something else entirely
    let offset = 1;
    v[offset] // violation: a code line separates it from the comment
}
