// Fixture: every panic site justified, converted, or in a test.

pub fn service(queue: &mut Vec<u64>, lanes: &[u64]) -> Option<u64> {
    // invariant: `pop` is checked by the caller holding the schedule
    // lock; an empty queue here would be a scheduler bug.
    let head = queue.pop().expect("scheduled session has a queue entry");
    let lane = lanes.first()?; // converted: recoverable instead of indexing
    Some(head + lane)
}

pub fn trailing(v: &[u8]) -> u8 {
    v[0] // invariant: callers validate `v` is non-empty at the API edge
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v = vec![1u64];
        assert_eq!(v.first().copied().unwrap(), v[0]);
    }
}
