// Fixture: poison-tolerant lock acquisition.

use std::sync::{Mutex, MutexGuard};

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

pub fn drain(m: &Mutex<Vec<u64>>) -> Vec<u64> {
    lock_recover(m).drain(..).collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn tests_may_assume_no_poison() {
        let m = Mutex::new(1u64);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
