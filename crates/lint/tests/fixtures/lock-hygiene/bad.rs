// Fixture: poison-cascading lock acquisition.

use std::sync::Mutex;

pub fn drain(m: &Mutex<Vec<u64>>) -> Vec<u64> {
    let mut g = m.lock().unwrap(); // violation
    g.drain(..).collect()
}

pub fn peek(m: &Mutex<Vec<u64>>) -> usize {
    m.try_lock().expect("uncontended").len() // violation
}
