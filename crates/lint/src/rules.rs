//! The rule set: each rule encodes one contract the workspace's PRs
//! established, scoped to the paths where the contract holds.
//!
//! Rules are deliberately *lexical* — they match token patterns, not
//! types — so each one documents the approximation it makes. The
//! engine ([`crate::lint_source`]) handles scoping, test-region
//! exemption, and `palc_lint: allow` suppression; a rule only reports
//! raw findings.

use crate::lexer::{Lexed, Token, TokenKind};

/// A raw finding before allow-suppression.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based line of the offending token.
    pub line: u32,
    /// What is wrong, concretely.
    pub message: String,
}

/// Static description of one rule.
pub struct Rule {
    /// Machine name, used in diagnostics and `allow(...)`.
    pub name: &'static str,
    /// The contract this rule protects (one sentence, shown by
    /// `--list-rules` and in the docs).
    pub contract: &'static str,
    /// Repo-relative path prefixes the rule applies to.
    pub include: &'static [&'static str],
    /// One-line fix hint attached to every diagnostic.
    pub hint: &'static str,
    /// Whether findings inside `#[cfg(test)]` / `#[test]` regions (and
    /// whole integration-test files) are exempt.
    pub skip_tests: bool,
    /// The matcher.
    pub check: fn(&RuleCx) -> Vec<Finding>,
}

/// Everything a matcher can see about one file.
pub struct RuleCx<'a> {
    /// The lexed file.
    pub lexed: &'a Lexed,
    /// `// palc_lint: hot-path` … `end hot-path` line ranges.
    pub hot_ranges: &'a [(u32, u32)],
}

/// Method names whose presence in a hot-path region breaks the
/// kernel-tier contract (PR 5): a per-tick loop of pure table lookups.
const TRANSCENDENTALS: &[&str] = &[
    "acos", "asin", "atan", "atan2", "powf", "exp", "exp2", "exp_m1", "ln", "ln_1p", "log", "log2",
    "log10", "sqrt", "cbrt", "sin", "cos", "tan", "sin_cos", "sinh", "cosh", "tanh", "hypot",
];

/// Identifiers that smuggle ambient nondeterminism into a
/// seed-reproducible path, with the reason each is banned.
const NONDETERMINISM: &[(&str, &str)] = &[
    ("Instant", "ambient wall-clock reads break seed-reproducibility"),
    ("SystemTime", "ambient wall-clock reads break seed-reproducibility"),
    ("thread_rng", "ambient RNG breaks seed-reproducibility"),
    ("from_entropy", "OS-entropy seeding breaks seed-reproducibility"),
    ("HashMap", "unordered iteration can reorder results between runs"),
    ("HashSet", "unordered iteration can reorder results between runs"),
];

/// The registry, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hot-path-transcendental",
        contract: "kernel-tier per-tick loops stay transcendental-free (PR 5): regions marked \
                   `// palc_lint: hot-path` must be pure table lookups",
        include: &["crates/", "src/"],
        hint: "precompute the value into a build-time table, or move the call out of the marked \
               region",
        skip_tests: false,
        check: check_hot_path,
    },
    Rule {
        name: "determinism",
        contract: "result-producing channel/stream/decode/fusion/impair/server paths are \
                   deterministic and seed-reproducible (PRs 7-8 replay byte-identically)",
        include: &[
            "crates/core/src/channel.rs",
            "crates/core/src/stream.rs",
            "crates/core/src/decode.rs",
            "crates/core/src/fusion.rs",
            "crates/core/src/impair.rs",
            "crates/core/src/server.rs",
        ],
        hint: "thread a seed or a Clock through instead; use BTreeMap/sorted Vec for iterated \
               maps",
        skip_tests: true,
        check: check_determinism,
    },
    Rule {
        name: "panic-audit",
        contract: "cross-thread modules (server/sweep/fusion) justify every panic site — an \
                   unjustified unwind cascades through sibling sessions and shards (PR 8)",
        include: &[
            "crates/core/src/server.rs",
            "crates/core/src/sweep.rs",
            "crates/core/src/fusion.rs",
        ],
        hint: "convert to a recoverable error (quarantine path), or justify with an adjacent \
               `// invariant: ...` comment",
        skip_tests: true,
        check: check_panic_audit,
    },
    Rule {
        name: "float-eq",
        contract: "bare f64/f32 == / != is reserved for the byte-identity replay contracts; \
                   everywhere else it is a tolerance bug waiting to happen",
        include: &["crates/", "src/"],
        hint: "compare with an explicit tolerance or total_cmp/to_bits; annotate when exact \
               equality is the contract",
        skip_tests: true,
        check: check_float_eq,
    },
    Rule {
        name: "lock-hygiene",
        contract: "`lock().unwrap()` turns one panic into a poison cascade across every thread \
                   touching the mutex (PR 8's sweep-sink bug); cross-thread locks recover",
        include: &["crates/", "src/"],
        hint: "use a poison-tolerant helper (`lock_recover`, or \
               `.unwrap_or_else(|p| p.into_inner())`) when plain-old-data state stays consistent",
        skip_tests: true,
        check: check_lock_hygiene,
    },
];

/// Looks up a rule by name (for `allow(...)` validation).
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

/// Is token `i` a call of an identifier in `names` — `name(` — optionally
/// reached as a method (`.name(`) or path segment (`::name(`)?
fn is_call(tokens: &[Token], i: usize, names: &[&str]) -> bool {
    tokens[i].kind == TokenKind::Ident
        && names.contains(&tokens[i].text.as_str())
        && matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Op && t.text == "(")
}

fn check_hot_path(cx: &RuleCx) -> Vec<Finding> {
    let tokens = &cx.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if in_ranges(cx.hot_ranges, tokens[i].line) && is_call(tokens, i, TRANSCENDENTALS) {
            out.push(Finding {
                line: tokens[i].line,
                message: format!(
                    "transcendental call `{}()` inside a `palc_lint: hot-path` region",
                    tokens[i].text
                ),
            });
        }
    }
    out
}

fn check_determinism(cx: &RuleCx) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in &cx.lexed.tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if let Some((name, why)) = NONDETERMINISM.iter().find(|(n, _)| *n == t.text) {
            out.push(Finding {
                line: t.line,
                message: format!("`{name}` in a deterministic path: {why}"),
            });
        }
    }
    out
}

fn check_panic_audit(cx: &RuleCx) -> Vec<Finding> {
    let tokens = &cx.lexed.tokens;
    let mut out = Vec::new();
    let mut push = |line: u32, what: &str| {
        out.push(Finding {
            line,
            message: format!(
                "{what} in a cross-thread module without an `// invariant:` \
                              justification"
            ),
        });
    };
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if is_call(tokens, i, &["unwrap", "expect"]) {
            push(t.line, &format!("`{}()`", t.text));
            continue;
        }
        // panic! / unreachable! / todo! / unimplemented!
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && matches!(tokens.get(i + 1), Some(n) if n.kind == TokenKind::Op && n.text == "!")
        {
            push(t.line, &format!("`{}!`", t.text));
            continue;
        }
        // Direct indexing: `expr[...]` — a `[` directly after an
        // expression-ending token. Attributes (`#[`, `#![`) have `#`/`!`
        // before the bracket and array types/literals have `:`/`=`/`(`,
        // so they never match. Keywords before `[` mean a slice type
        // (`&mut [f64]`) or a pattern/literal position (`let [a, b]`,
        // `for x in [..]`), not indexing. Full-range slices `[..]`
        // cannot panic and are skipped.
        if t.kind == TokenKind::Op && t.text == "[" && i > 0 {
            const NON_EXPR_KEYWORDS: &[&str] = &[
                "mut", "dyn", "in", "return", "else", "match", "move", "ref", "break", "let",
                "const", "static", "as", "where", "impl", "for", "type", "if", "while", "loop",
                "yield", "box",
            ];
            let prev = &tokens[i - 1];
            let expr_end = (prev.kind == TokenKind::Ident
                && !NON_EXPR_KEYWORDS.contains(&prev.text.as_str()))
                || prev.kind == TokenKind::Literal
                || (prev.kind == TokenKind::Op && matches!(prev.text.as_str(), ")" | "]"));
            let full_range = matches!(tokens.get(i + 1), Some(a) if a.text == "..")
                && matches!(tokens.get(i + 2), Some(b) if b.text == "]");
            if expr_end && !full_range {
                push(t.line, "direct indexing (`[...]`)");
            }
        }
    }
    out
}

/// Lexical approximation: equality where one operand is visibly a float
/// — a float literal, or an `f64::`/`f32::` associated constant. Typed
/// comparisons of float *variables* are invisible to a lexer; the
/// byte-identity tests that legitimately compare floats exactly do it
/// through `to_bits()`, which this never flags.
fn check_float_eq(cx: &RuleCx) -> Vec<Finding> {
    let tokens = &cx.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !(t.kind == TokenKind::Op && (t.text == "==" || t.text == "!=")) {
            continue;
        }
        let float_literal = |j: Option<&Token>| matches!(j, Some(x) if x.kind == TokenKind::Float);
        // `f64::NAN == x` (backwards: ident `::` f64 right of the
        // constant name) / `x == f64::INFINITY`.
        let float_path_ahead = matches!(tokens.get(i + 1), Some(a) if a.text == "f64" || a.text == "f32")
            && matches!(tokens.get(i + 2), Some(b) if b.text == "::");
        let float_path_behind = i >= 3
            && tokens[i - 2].text == "::"
            && (tokens[i - 3].text == "f64" || tokens[i - 3].text == "f32");
        if float_literal(i.checked_sub(1).map(|j| &tokens[j]))
            || float_literal(tokens.get(i + 1))
            || float_path_ahead
            || float_path_behind
        {
            out.push(Finding {
                line: t.line,
                message: format!("bare floating-point `{}` comparison", t.text),
            });
        }
    }
    out
}

fn check_lock_hygiene(cx: &RuleCx) -> Vec<Finding> {
    let tokens = &cx.lexed.tokens;
    let mut out = Vec::new();
    // `lock ( ) . unwrap|expect (`
    for i in 0..tokens.len().saturating_sub(5) {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "lock" | "try_lock" | "read" | "write")
            && tokens[i + 1].text == "("
            && tokens[i + 2].text == ")"
            && tokens[i + 3].text == "."
            && matches!(tokens[i + 4].text.as_str(), "unwrap" | "expect")
            && tokens[i + 5].text == "("
        {
            // `read()`/`write()` also cover RwLock; io::Read::read(buf)
            // takes arguments, so the `()` shape keeps io out.
            out.push(Finding {
                line: t.line,
                message: format!(
                    "`{}().{}()` propagates mutex poisoning as a panic cascade",
                    t.text,
                    tokens[i + 4].text
                ),
            });
        }
    }
    out
}
