//! A minimal Rust lexer: just enough token structure for line-grained
//! invariant rules.
//!
//! The workspace builds offline, so `syn`/`proc-macro2` are out of
//! reach; this lexer is the dependency-free substitute. It produces a
//! stream of *code tokens* (identifiers, literals, operators) with the
//! contents of strings, characters, and comments stripped out, plus a
//! parallel list of comments — which is exactly the split the rules
//! need: patterns are matched over code tokens only (so `"unwrap()"`
//! inside a string can never fire a rule), while annotations and
//! `// invariant:` justifications are read from the comment list.
//!
//! Handled faithfully because real sources in this tree use them:
//! nested block comments, raw strings with arbitrary `#` fences, byte
//! and raw-byte strings, char literals vs lifetimes, raw identifiers,
//! float literals vs range expressions (`1.5` vs `1..5`), and multi-char
//! operators (`==` / `!=` are single tokens so the float-eq rule cannot
//! misread `<=`). Everything carries a 1-based line number.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers are unprefixed: `r#fn`
    /// lexes as `fn` with `raw = true` semantics folded away — rules
    /// match on the name).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// An integer literal.
    Int,
    /// A floating-point literal (`1.5`, `1.`, `2e8`, `1.0f32`).
    Float,
    /// A string / byte-string / char literal (contents dropped; text is
    /// the empty string).
    Literal,
    /// An operator or punctuation token; `text` holds the exact spelling
    /// (`==`, `!=`, `::`, `..`, single punctuation, …).
    Op,
}

/// One code token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// Identifier name, operator spelling, or literal text (empty for
    /// string/char literals).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// One comment (line or block).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order; no comments, no literal contents.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// 1-based lines that carry at least one code token.
    pub fn code_lines(&self) -> std::collections::BTreeSet<u32> {
        self.tokens.iter().map(|t| t.line).collect()
    }
}

/// Multi-character operators, longest first so greedy matching is
/// unambiguous. Only the ones whose *absence* could corrupt a rule
/// matter (`<=` must not lex as `<`, `=` and then read as part of an
/// equality chain), but carrying the standard set keeps token streams
/// predictable for future rules.
const OPERATORS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "::", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `source` into code tokens and comments. Never fails: on
/// malformed input (unterminated string, stray byte) it degrades by
/// emitting what it saw and moving on — a linter must not crash on the
/// code it polices.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = source[start..i].trim_start_matches(['/', '!']).to_string();
                out.comments.push(Comment { line, end_line: line, text });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1u32;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text = source[start..end].trim_start_matches(['*', '!']).to_string();
                out.comments.push(Comment { line: start_line, end_line: line, text });
            }
            b'"' => i = skip_string(bytes, i, &mut line, &mut out),
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte(bytes, i, &mut line, &mut out)
            }
            b'\'' => i = lex_quote(source, bytes, i, &mut line, &mut out),
            c if c.is_ascii_digit() => i = lex_number(source, bytes, i, line, &mut out),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let mut text = &source[start..i];
                // Raw identifier: the `r#` prefix was consumed as ident
                // start only when `r` begins the token; handle `r#name`.
                if text == "r" && bytes.get(i) == Some(&b'#') && ident_start(bytes.get(i + 1)) {
                    let s2 = i + 1;
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    text = &source[s2..i];
                }
                out.tokens.push(Token { kind: TokenKind::Ident, text: text.to_string(), line });
            }
            _ => {
                // Operator / punctuation: greedy multi-char match first.
                let rest = &source[i..];
                let op = OPERATORS.iter().find(|op| rest.starts_with(**op));
                match op {
                    Some(op) => {
                        out.tokens.push(Token {
                            kind: TokenKind::Op,
                            text: (*op).to_string(),
                            line,
                        });
                        i += op.len();
                    }
                    None => {
                        let ch_len = source[i..].chars().next().map_or(1, char::len_utf8);
                        out.tokens.push(Token {
                            kind: TokenKind::Op,
                            text: source[i..i + ch_len].to_string(),
                            line,
                        });
                        i += ch_len;
                    }
                }
            }
        }
    }
    out
}

fn ident_start(b: Option<&u8>) -> bool {
    matches!(b, Some(c) if c.is_ascii_alphabetic() || *c == b'_')
}

/// Is `r"`, `r#"`, `b"`, `br"`, `rb`? (`rb` is not Rust; `br` is.)
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    // Plain `b"..."` byte string, or raw with fences.
    j > i && bytes.get(j) == Some(&b'"')
}

/// Skips a normal (escaped) string literal starting at `"`; emits a
/// Literal token.
fn skip_string(bytes: &[u8], start: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let tok_line = *line;
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line: tok_line });
    i
}

/// Skips `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##` literals.
fn skip_raw_or_byte(bytes: &[u8], start: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let tok_line = *line;
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut fences = 0usize;
    while bytes.get(i) == Some(&b'#') {
        fences += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    if raw {
        // Raw: ends at `"` followed by `fences` hashes; no escapes.
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
                i += 1;
            } else if bytes[i] == b'"' && bytes[i + 1..].iter().take(fences).all(|&b| b == b'#') {
                i += 1 + fences;
                break;
            } else {
                i += 1;
            }
        }
        out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line: tok_line });
        i
    } else {
        // `b"…"`: same escape rules as a normal string.
        skip_string(bytes, i - 1, line, out)
    }
}

/// `'` starts either a lifetime (`'a`) or a char literal (`'x'`,
/// `'\n'`). Standard disambiguation: an identifier after the quote with
/// no closing quote right behind it is a lifetime.
fn lex_quote(source: &str, bytes: &[u8], start: usize, line: &mut u32, out: &mut Lexed) -> usize {
    let i = start + 1;
    if ident_start(bytes.get(i)) {
        let mut j = i;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if bytes.get(j) != Some(&b'\'') {
            out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: source[i..j].to_string(),
                line: *line,
            });
            return j;
        }
    }
    // Char literal. Walk to the closing quote, honouring escapes.
    let tok_line = *line;
    let mut j = i;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => {
                j += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    out.tokens.push(Token { kind: TokenKind::Literal, text: String::new(), line: tok_line });
    j
}

/// Lexes a numeric literal; classifies int vs float. A `.` belongs to
/// the number only when it is not the start of `..` and not a method
/// call on the literal (`1.max(…)` — which rustc rejects anyway, but a
/// linter should not mistokenise the attempt).
fn lex_number(source: &str, bytes: &[u8], start: usize, line: u32, out: &mut Lexed) -> usize {
    let mut i = start;
    let mut float = false;
    // Radix prefixes never have fractional parts.
    let radix = i + 1 < bytes.len()
        && bytes[i] == b'0'
        && matches!(bytes[i + 1], b'x' | b'o' | b'b' | b'X' | b'O' | b'B');
    if radix {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
    } else {
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1) != Some(&b'.') {
            let after = bytes.get(i + 1);
            let method = ident_start(after);
            if !method {
                float = true;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
        }
        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
            let mut j = i + 1;
            if matches!(bytes.get(j), Some(b'+') | Some(b'-')) {
                j += 1;
            }
            if matches!(bytes.get(j), Some(d) if d.is_ascii_digit()) {
                float = true;
                i = j;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
        }
        // Type suffix: `1f64` / `2.5f32` are floats; `1u32` stays int.
        let suffix_start = i;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        match &source[suffix_start..i] {
            "f32" | "f64" => float = true,
            _ => {}
        }
    }
    let kind = if float { TokenKind::Float } else { TokenKind::Int };
    out.tokens.push(Token { kind, text: source[start..i].to_string(), line });
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_operators() {
        let t = kinds("let x = a.unwrap();");
        let names: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, vec!["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn equality_operators_are_single_tokens() {
        let t = kinds("a == b != c <= d => e");
        let ops: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokenKind::Op).map(|(_, s)| s.as_str()).collect();
        assert_eq!(ops, vec!["==", "!=", "<=", "=>"]);
    }

    #[test]
    fn string_contents_never_become_tokens() {
        let t = kinds(r#"let s = "x.unwrap() // not a comment";"#);
        assert!(t.iter().all(|(_, s)| s != "unwrap"));
        let lexed = lex(r#"let s = "x.unwrap() // not a comment";"#);
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r#"inner "quote" and sqrt( stays put"#; x.sqrt()"####;
        let t = kinds(src);
        let sqrts = t.iter().filter(|(_, s)| s == "sqrt").count();
        assert_eq!(sqrts, 1, "only the real call tokenises");
    }

    #[test]
    fn byte_strings_and_chars_and_lifetimes() {
        let t = kinds(r#"fn f<'a>(x: &'a u8) { let c = '\''; let b = b"//"; }"#);
        let lifetimes = t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        assert!(lex(r#"let c = '\''; // trailing"#).comments.len() == 1);
    }

    #[test]
    fn floats_vs_ranges_vs_ints() {
        let t = kinds("let a = 1.5; let b = 1..5; let c = 2e8; let d = 1f64; let e = 7;");
        let floats: Vec<&str> =
            t.iter().filter(|(k, _)| *k == TokenKind::Float).map(|(_, s)| s.as_str()).collect();
        assert_eq!(floats, vec!["1.5", "2e8", "1f64"]);
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Op && s == ".."));
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let src = "/* outer /* inner */ still comment */\nfn f() {}\n// tail\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.tokens[0].text, "fn");
        assert_eq!(lexed.tokens[0].line, 2);
        assert_eq!(lexed.comments[1].line, 3);
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let lexed = lex("/// doc line\n//! inner doc\n");
        assert_eq!(lexed.comments[0].text.trim(), "doc line");
        assert_eq!(lexed.comments[1].text.trim(), "inner doc");
    }

    #[test]
    fn raw_identifiers() {
        let t = kinds("let r#fn = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "fn"));
    }
}
