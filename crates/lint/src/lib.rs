#![forbid(unsafe_code)]
//! `palc_lint` — the workspace's in-tree invariant checker.
//!
//! The codebase rests on contracts that `rustc` cannot see: kernel-tier
//! tick loops must stay transcendental-free, decode paths must be
//! seed-reproducible, cross-thread modules must justify every panic
//! site. This crate turns those conventions into a CI gate. It is
//! dependency-free by necessity (the build environment is offline, so
//! `syn` is unavailable): [`lexer`] is a mini Rust lexer producing a
//! token stream with string/comment contents stripped, [`rules`] holds
//! the five path-scoped rules, and this module is the engine —
//! annotation parsing, test-region exemption, suppression bookkeeping,
//! and the tree walk.
//!
//! # Annotation grammar
//!
//! Every exception is a reviewed, justified line in the diff:
//!
//! ```text
//! // palc_lint: allow(<rule>[, <rule>...]) -- <reason>
//! ```
//!
//! A trailing annotation suppresses findings on its own line; an
//! annotation on a comment-only line suppresses findings on the next
//! code line. The reason after `--` is mandatory, unknown rule names
//! are errors, and an allow that suppresses nothing is itself flagged —
//! annotations cannot rot silently.
//!
//! Hot-path regions are bracketed by a marker pair:
//!
//! ```text
//! // palc_lint: hot-path
//! ...per-tick code...
//! // palc_lint: end hot-path
//! ```
//!
//! Panic-audit justifications use a plain comment containing
//! `invariant:` on the offending line or on the comment block
//! immediately above it.

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{lex, Comment, Lexed, Token};
use rules::RuleCx;
pub use rules::{Rule, RULES};

/// Pseudo-rule name used for problems with the annotations themselves
/// (malformed grammar, unknown rule names, unused allows, unbalanced
/// hot-path markers).
pub const ANNOTATION_RULE: &str = "annotation";

/// One diagnostic: file, line, rule, message, fix hint.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name, or [`ANNOTATION_RULE`] for annotation problems.
    pub rule: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    hint: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Result of linting a whole tree.
#[derive(Debug, Default)]
pub struct TreeReport {
    /// Number of `.rs` files examined.
    pub files: usize,
    /// All diagnostics, ordered by path then line.
    pub violations: Vec<Violation>,
}

// ---------------------------------------------------------------------------
// Annotation directives
// ---------------------------------------------------------------------------

/// One parsed `allow(...)` annotation.
struct Allow {
    /// Line of the annotation comment (for unused-allow reporting).
    comment_line: u32,
    /// Code line the allow applies to (`None` if no code follows).
    target: Option<u32>,
    /// `(rule name, consumed)` — consumed flips when a finding is
    /// suppressed, so leftovers can be flagged.
    entries: Vec<(&'static str, bool)>,
}

/// Everything extracted from `palc_lint:` comments in one file.
struct Directives {
    allows: Vec<Allow>,
    /// Inclusive `(start, end)` line ranges of hot-path regions.
    hot_ranges: Vec<(u32, u32)>,
    /// Grammar problems, as `(line, message)`.
    errors: Vec<(u32, String)>,
}

fn parse_directives(lexed: &Lexed, code_lines: &BTreeSet<u32>) -> Directives {
    let mut dirs = Directives { allows: Vec::new(), hot_ranges: Vec::new(), errors: Vec::new() };
    let mut open_hot: Vec<u32> = Vec::new();

    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("palc_lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot-path" {
            open_hot.push(c.line);
        } else if rest == "end hot-path" {
            match open_hot.pop() {
                Some(start) => dirs.hot_ranges.push((start, c.line)),
                None => dirs.errors.push((
                    c.line,
                    "`end hot-path` without a matching `// palc_lint: hot-path`".to_string(),
                )),
            }
        } else if let Some(body) = rest.strip_prefix("allow(") {
            match parse_allow(body) {
                Ok(entries) => dirs.allows.push(Allow {
                    comment_line: c.line,
                    target: allow_target(c, code_lines),
                    entries,
                }),
                Err(msg) => dirs.errors.push((c.line, msg)),
            }
        } else {
            dirs.errors.push((
                c.line,
                format!(
                    "unknown `palc_lint:` directive `{rest}` (expected `allow(<rule>) -- \
                     <reason>`, `hot-path`, or `end hot-path`)"
                ),
            ));
        }
    }
    for start in open_hot {
        dirs.errors
            .push((start, "`hot-path` region is never closed with `end hot-path`".to_string()));
    }
    dirs
}

/// Parses the `<rules>) -- <reason>` tail of an allow directive.
fn parse_allow(body: &str) -> Result<Vec<(&'static str, bool)>, String> {
    let Some(close) = body.find(')') else {
        return Err("`allow(` is missing its closing `)`".to_string());
    };
    let (names, tail) = body.split_at(close);
    let tail = tail[1..].trim();
    let reason = tail.strip_prefix("--").map(str::trim);
    match reason {
        None => {
            return Err("`allow(...)` needs a justification: `-- <reason>` after the closing paren"
                .to_string())
        }
        Some("") => return Err("the `--` justification must not be empty".to_string()),
        Some(_) => {}
    }
    let mut entries = Vec::new();
    for name in names.split(',') {
        let name = name.trim();
        match rules::rule_by_name(name) {
            Some(rule) => entries.push((rule.name, false)),
            None => {
                let known: Vec<&str> = RULES.iter().map(|r| r.name).collect();
                return Err(format!(
                    "unknown rule `{name}` in allow(...); known rules: {}",
                    known.join(", ")
                ));
            }
        }
    }
    if entries.is_empty() {
        return Err("`allow()` lists no rules".to_string());
    }
    Ok(entries)
}

/// A trailing annotation targets its own line; a standalone one targets
/// the next code line after the comment.
fn allow_target(c: &Comment, code_lines: &BTreeSet<u32>) -> Option<u32> {
    if code_lines.contains(&c.line) {
        return Some(c.line);
    }
    code_lines.range(c.end_line + 1..).next().copied()
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Inclusive line ranges of `#[cfg(test)]`-gated items and `#[test]`
/// functions, found by brace-matching over the token stream.
fn test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if !(t[i].text == "#" && t.get(i + 1).is_some_and(|x| x.text == "[")) {
            i += 1;
            continue;
        }
        let attr_line = t[i].line;
        // Find the matching `]` of the attribute.
        let mut j = i + 2;
        let mut depth = 1u32;
        while j < t.len() && depth > 0 {
            match t[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let inner = &t[i + 2..j.saturating_sub(1).max(i + 2)];
        let is_cfg_test = inner.first().is_some_and(|x| x.text == "cfg")
            && inner.iter().any(|x| x.text == "test")
            && !inner.iter().any(|x| x.text == "not");
        let is_plain_test = inner.len() == 1 && inner[0].text == "test";
        if is_cfg_test || is_plain_test {
            if let Some(end_line) = item_end_line(t, j) {
                out.push((attr_line, end_line));
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// From just past an attribute, the line of the `}` closing the
/// annotated item's body. `None` for brace-less items (`mod tests;`).
fn item_end_line(t: &[Token], mut i: usize) -> Option<u32> {
    while i < t.len() && t[i].text != "{" {
        if t[i].text == ";" {
            return None;
        }
        i += 1;
    }
    let mut depth = 0u32;
    while i < t.len() {
        match t[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(t[i].line);
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Unterminated (malformed source): treat the rest of the file as
    // the item.
    t.last().map(|tok| tok.line)
}

fn line_in(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

// ---------------------------------------------------------------------------
// Panic-audit justification
// ---------------------------------------------------------------------------

/// Is there an `invariant:` comment on `line` or on the comment block
/// directly above it? Case-insensitive; a code line without one breaks
/// the upward scan.
fn has_invariant_justification(lexed: &Lexed, code_lines: &BTreeSet<u32>, line: u32) -> bool {
    let justifies = |c: &Comment| c.text.to_ascii_lowercase().contains("invariant:");
    let covering = |l: u32| lexed.comments.iter().find(|c| c.line <= l && l <= c.end_line);
    if covering(line).is_some_and(&justifies) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        match covering(l) {
            Some(c) => {
                if justifies(c) {
                    return true;
                }
                if code_lines.contains(&l) {
                    // A trailing comment on the code line above was the
                    // last candidate.
                    return false;
                }
                l = c.line.saturating_sub(1);
            }
            // Blank or comment-free code line: the contiguous comment
            // block has ended.
            None => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Is this file exempt from test-skipping rules wholesale (an
/// integration-test file under a `tests/` directory)?
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|seg| seg == "tests")
}

/// Lints one file's source. `path` is the repo-relative path with
/// forward slashes; rule scoping matches on its prefix.
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let code_lines = lexed.code_lines();
    let mut dirs = parse_directives(&lexed, &code_lines);
    let tests = test_regions(&lexed);
    let test_file = is_test_path(path);

    let mut out: Vec<Violation> = dirs
        .errors
        .iter()
        .map(|(line, message)| Violation {
            path: path.to_string(),
            line: *line,
            rule: ANNOTATION_RULE,
            message: message.clone(),
            hint: "see the annotation grammar in docs/ARCHITECTURE.md §Static analysis",
        })
        .collect();

    for rule in RULES {
        if !rule.include.iter().any(|prefix| path.starts_with(prefix)) {
            continue;
        }
        if rule.skip_tests && test_file {
            continue;
        }
        let cx = RuleCx { lexed: &lexed, hot_ranges: &dirs.hot_ranges };
        for finding in (rule.check)(&cx) {
            if rule.skip_tests && line_in(&tests, finding.line) {
                continue;
            }
            if rule.name == "panic-audit"
                && has_invariant_justification(&lexed, &code_lines, finding.line)
            {
                continue;
            }
            if consume_allow(&mut dirs.allows, rule.name, finding.line) {
                continue;
            }
            out.push(Violation {
                path: path.to_string(),
                line: finding.line,
                rule: rule.name,
                message: finding.message,
                hint: rule.hint,
            });
        }
    }

    // Allows that suppressed nothing are stale — flag them so
    // annotations track the code they excuse.
    for allow in &dirs.allows {
        for (name, used) in &allow.entries {
            if !used {
                out.push(Violation {
                    path: path.to_string(),
                    line: allow.comment_line,
                    rule: ANNOTATION_RULE,
                    message: format!(
                        "unused `allow({name})` — no {name} finding on the annotated line"
                    ),
                    hint: "remove the stale annotation or move it next to the code it excuses",
                });
            }
        }
    }

    out.sort_by_key(|v| (v.line, v.rule));
    out
}

fn consume_allow(allows: &mut [Allow], rule: &str, line: u32) -> bool {
    for allow in allows.iter_mut() {
        if allow.target == Some(line) {
            for entry in &mut allow.entries {
                if entry.0 == rule {
                    entry.1 = true;
                    return true;
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Tree walk
// ---------------------------------------------------------------------------

/// All `.rs` files under `root`, sorted, skipping build output
/// (`target/`), hidden directories, and lint fixture corpora
/// (`fixtures/` — those files *contain* violations on purpose).
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if name.starts_with('.') || name == "target" || name == "fixtures" {
                    continue;
                }
                walk(&entry.path(), out)?;
            } else if name.ends_with(".rs") {
                out.push(entry.path());
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

/// Lints every Rust source under `root` (the workspace root).
pub fn lint_tree(root: &Path) -> io::Result<TreeReport> {
    let mut report = TreeReport::default();
    for file in collect_files(root)? {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
        // Non-UTF-8 sources cannot be Rust; skip rather than fail the
        // whole run.
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        report.files += 1;
        report.violations.extend(lint_source(&rel, &source));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE: &str = "crates/core/src/server.rs";

    fn rules_fired(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "fn f(a: f64) -> bool {\n    a == 1.5 // palc_lint: allow(float-eq) -- exact \
                   sentinel\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "fn f(a: f64) -> bool {\n    // palc_lint: allow(float-eq) -- exact \
                   sentinel\n    a == 1.5\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let src = "// palc_lint: allow(float-eq)\nfn f(a: f64) -> bool { a == 1.5 }\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert!(v.iter().any(|v| v.rule == ANNOTATION_RULE && v.message.contains("reason")));
        // And the finding itself still fires: a malformed allow
        // suppresses nothing.
        assert!(v.iter().any(|v| v.rule == "float-eq"));
    }

    #[test]
    fn unknown_rule_name_is_an_error() {
        let src = "// palc_lint: allow(no-such-rule) -- whatever\nfn f() {}\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// palc_lint: allow(float-eq) -- nothing here needs it\nfn f() {}\n";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unused"));
    }

    #[test]
    fn unbalanced_hot_path_markers_are_errors() {
        let open = "// palc_lint: hot-path\nfn f() {}\n";
        assert_eq!(rules_fired("crates/x/src/lib.rs", open), vec![ANNOTATION_RULE]);
        let close = "fn f() {}\n// palc_lint: end hot-path\n";
        assert_eq!(rules_fired("crates/x/src/lib.rs", close), vec![ANNOTATION_RULE]);
    }

    #[test]
    fn cfg_test_regions_are_exempt_for_skipping_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper(a: f64) -> bool { a == 1.5 }\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn f(a: f64) -> bool { a == 1.5 }\n}\n";
        assert_eq!(rules_fired("crates/x/src/lib.rs", src), vec!["float-eq"]);
    }

    #[test]
    fn tests_directory_files_are_exempt_wholesale() {
        let src = "fn f(a: f64) -> bool { a == 1.5 }\n";
        assert!(lint_source("crates/x/tests/conformance.rs", src).is_empty());
        assert_eq!(rules_fired("crates/x/src/lib.rs", src), vec!["float-eq"]);
    }

    #[test]
    fn invariant_comment_justifies_panic_site() {
        let clean = "fn f(v: &[u8]) -> u8 {\n    // invariant: caller bounds-checks `0`\n    \
                     v[0]\n}\n";
        assert!(lint_source(CORE, clean).is_empty());
        let dirty = "fn f(v: &[u8]) -> u8 {\n    v[0]\n}\n";
        assert_eq!(rules_fired(CORE, dirty), vec!["panic-audit"]);
    }

    #[test]
    fn invariant_scan_stops_at_intervening_code() {
        let src = "fn f(v: &[u8]) -> u8 {\n    // invariant: stale, talks about `a`\n    let a = \
                   1;\n    v[a]\n}\n";
        assert_eq!(rules_fired(CORE, src), vec!["panic-audit"]);
    }

    #[test]
    fn scope_boundaries_respected() {
        // `Instant` is a determinism finding in core's server.rs but
        // not in a bench crate.
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert!(rules_fired(CORE, src).iter().all(|r| *r == "determinism"));
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }
}
