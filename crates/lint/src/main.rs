#![forbid(unsafe_code)]
//! CLI for `palc_lint`.
//!
//! ```text
//! palc_lint [--check] [--list-rules] [ROOT]
//! ```
//!
//! Without `ROOT` the workspace root is discovered by walking up from
//! the current directory to the first `Cargo.toml` with a
//! `[workspace]` table. Without `--check` the run is report-only
//! (exit 0 regardless); with it, any violation sets exit code 1 so CI
//! fails the build.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use palc_lint::{lint_tree, RULES};

fn main() -> ExitCode {
    let mut check = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                println!("usage: palc_lint [--check] [--list-rules] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("palc_lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{}", rule.name);
            println!("    contract: {}", rule.contract);
            println!("    scope:    {}", rule.include.join(", "));
            println!("    hint:     {}", rule.hint);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => discover_workspace_root(),
    };
    let report = match lint_tree(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("palc_lint: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for violation in &report.violations {
        println!("{violation}");
    }
    if report.violations.is_empty() {
        println!("palc_lint: clean — {} files, {} rules", report.files, RULES.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "palc_lint: {} violation(s) across {} files",
            report.violations.len(),
            report.files
        );
        if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`; falls back to `.` so an odd invocation
/// still lints something rather than erroring.
fn discover_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
