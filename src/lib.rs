//! # palc-lab — passive communication with ambient light
//!
//! One-stop import for the whole `palc` workspace: a simulation-backed
//! reproduction of *“Passive Communication with Ambient Light”* (Wang,
//! Zuniga, Giustiniano — ACM CoNEXT 2016), grown into a streaming,
//! multi-core system. The repository-level `examples/` and `tests/`
//! build against this crate, exercising the public API exactly as a
//! downstream user would.
//!
//! ## Quickstart
//!
//! Encode two bits into a reflective tag, drive it under the receiver on
//! the paper's indoor bench, decode the RSS trace:
//!
//! ```
//! use palc_lab::core::channel::Scenario;
//! use palc_lab::prelude::*;
//!
//! let scenario = Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20);
//! let decoded = AdaptiveDecoder::default()
//!     .with_expected_bits(2)
//!     .decode(&scenario.run(42))
//!     .unwrap();
//! assert_eq!(decoded.payload.to_string(), "10");
//! ```
//!
//! Or decode *live*, while the object is still passing — the batch
//! decoder above is a thin drain over the same push-based state machine:
//!
//! ```
//! use palc_lab::core::channel::Scenario;
//! use palc_lab::core::stream::{DecodeEvent, StreamingDecoder};
//! use palc_lab::prelude::*;
//!
//! let scenario = Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20);
//! let fs = scenario.channel().frontend.sample_rate_hz();
//! let mut rx = StreamingDecoder::new(AdaptiveDecoder::default().with_expected_bits(2), fs);
//! let packet = scenario
//!     .sampler(42)
//!     .find_map(|sample| match rx.push(sample) {
//!         Some(DecodeEvent::Packet(p)) => Some(p),
//!         _ => None,
//!     })
//!     .expect("decoded mid-pass");
//! assert_eq!(packet.payload.to_string(), "10");
//! ```
//!
//! ## Tour
//!
//! Runnable examples (`cargo run --release --example <name>`):
//!
//! * `quickstart` — the smallest end-to-end round trip (above).
//! * `live_decode` — three live receivers streaming push-based decoders
//!   into an online fusion centre, packets reported mid-pass.
//! * `car_gate` — the Sec. 5 vehicular link: car-shape long preamble,
//!   speed estimate, roof-tag decode.
//! * `food_truck`, `hospital_trolleys` — deployment-flavoured scenarios
//!   over the indoor link.
//! * `collision_lab` — the Sec. 4.3 FFT collision analysis.
//!
//! The figure-by-figure paper reproduction lives in the `palc_repro`
//! binary: `cargo run --release -p palc_repro`. The architecture
//! handbook — crate map, pipeline stages, the static/dynamic and
//! batch/streaming splits, testing strategy — is `docs/ARCHITECTURE.md`
//! at the repository root.
//!
//! ## Re-exported crates
//!
//! * [`dsp`] — FFT, DTW, filters, peak detection ([`palc_dsp`]).
//! * [`optics`] — photometry, spectra, materials, sources, FoV
//!   ([`palc_optics`]).
//! * [`frontend`] — photodiode / RX-LED / amplifier / ADC models
//!   ([`palc_frontend`]).
//! * [`scene`] — tags, trajectories, cars, environments ([`palc_scene`]).
//! * [`phy`] — symbols, Manchester coding, packets, codebooks
//!   ([`palc_phy`]).
//! * [`core`] — the paper's algorithms: channel simulation, batch and
//!   streaming decoding, classification, collision analysis, capacity,
//!   sweeps, fusion ([`palc`]).

#![forbid(unsafe_code)]

pub use palc as core;
pub use palc_dsp as dsp;
pub use palc_frontend as frontend;
pub use palc_optics as optics;
pub use palc_phy as phy;
pub use palc_scene as scene;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use palc::prelude::*;
    pub use palc_dsp::{dtw_normalized, normalize_minmax, power_spectrum};
    pub use palc_frontend::{OpticalReceiver, PdGain};
    pub use palc_optics::{FieldOfView, LightSource, Material, Vec3};
    pub use palc_phy::{Bits, Packet, Symbol};
    pub use palc_scene::{Tag, Trajectory};
}
