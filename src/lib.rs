//! # palc-lab — workspace facade
//!
//! One-stop import for the whole `palc` workspace: the reproduction of
//! *“Passive Communication with Ambient Light”* (Wang, Zuniga,
//! Giustiniano — ACM CoNEXT 2016). The repository-level `examples/` and
//! `tests/` build against this crate, exercising the public API exactly
//! as a downstream user would.
//!
//! ```
//! use palc_lab::prelude::*;
//! ```
//!
//! Re-exported crates:
//!
//! * [`dsp`] — FFT, DTW, filters, peak detection ([`palc_dsp`]).
//! * [`optics`] — photometry, spectra, materials, sources, FoV
//!   ([`palc_optics`]).
//! * [`frontend`] — photodiode / RX-LED / amplifier / ADC models
//!   ([`palc_frontend`]).
//! * [`scene`] — tags, trajectories, cars, environments ([`palc_scene`]).
//! * [`phy`] — symbols, Manchester coding, packets, codebooks
//!   ([`palc_phy`]).
//! * [`core`] — the paper's algorithms: channel simulation, decoding,
//!   classification, collision analysis, capacity ([`palc`]).

#![forbid(unsafe_code)]

pub use palc as core;
pub use palc_dsp as dsp;
pub use palc_frontend as frontend;
pub use palc_optics as optics;
pub use palc_phy as phy;
pub use palc_scene as scene;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use palc::prelude::*;
    pub use palc_dsp::{dtw_normalized, normalize_minmax, power_spectrum};
    pub use palc_frontend::{OpticalReceiver, PdGain};
    pub use palc_optics::{FieldOfView, LightSource, Material, Vec3};
    pub use palc_phy::{Bits, Packet, Symbol};
    pub use palc_scene::{Tag, Trajectory};
}
