//! Cross-crate integration tests: full pipeline scene → optics → frontend
//! → RSS → decode, covering every paper scenario end to end.

use palc_lab::core::channel::Scenario;
use palc_lab::optics::source::{SkyCondition, Sun};
use palc_lab::prelude::*;

#[test]
fn fig5_indoor_bench_roundtrip_both_codes() {
    for bits in ["00", "10"] {
        let scenario = Scenario::indoor_bench(Packet::from_bits(bits).unwrap(), 0.03, 0.20);
        let out = AdaptiveDecoder::default()
            .with_expected_bits(bits.len())
            .decode(&scenario.run(42))
            .unwrap_or_else(|e| panic!("{bits}: {e}"));
        assert_eq!(out.payload.to_string(), bits);
    }
}

#[test]
fn indoor_roundtrip_across_seeds_and_payloads() {
    for (bits, width, height) in
        [("1101", 0.04, 0.30), ("011010", 0.03, 0.25), ("11111111", 0.03, 0.20)]
    {
        for seed in [1u64, 7, 99] {
            let scenario = Scenario::indoor_bench(Packet::from_bits(bits).unwrap(), width, height);
            let out = AdaptiveDecoder::default()
                .with_expected_bits(bits.len())
                .decode(&scenario.run(seed))
                .unwrap_or_else(|e| panic!("{bits}@{height} seed {seed}: {e}"));
            assert_eq!(out.payload.to_string(), bits, "seed {seed}");
        }
    }
}

#[test]
fn fig7_ceiling_light_decodes_with_ripple() {
    let scenario = Scenario::ceiling_office(Packet::from_bits("10").unwrap(), 0.03, 500.0);
    let decoder = AdaptiveDecoder { smooth_window_s: 0.012, ..AdaptiveDecoder::default() }
        .with_expected_bits(2);
    let out = decoder.decode(&scenario.run(7)).expect("ceiling decode");
    assert_eq!(out.payload.to_string(), "10");
}

#[test]
fn fig17_outdoor_two_phase_decode() {
    let scenario = Scenario::outdoor_car(
        CarModel::volvo_v40(),
        Some(Packet::from_bits("00").unwrap()),
        0.75,
        Sun::cloudy_noon(4),
    );
    let out = TwoPhaseDecoder::new(CarModel::volvo_v40(), 0.10, 2)
        .decode(&scenario.run(2))
        .expect("outdoor decode");
    assert_eq!(out.notation(), "HLHL.HLHL");
    // ~50 symbols/s at 18 km/h with 10 cm symbols.
    assert!((out.symbol_rate_hz() - 50.0).abs() < 12.0);
}

#[test]
fn fig15_boundary_led_works_at_450_not_100_lux() {
    // The 100 lux condition sits right at the decode boundary, so single
    // noise realisations flip either way; assert on the delivery ratio
    // over a deterministic seed batch instead. The paper's claim
    // survives: a solid link at 450 lux, an unusable one at 100 lux
    // (well below any acceptable delivery ratio), and a dead one deeper
    // into dusk.
    let trials = 12u64;
    let decode_rate = |lux: f64| -> usize {
        let sun = Sun::new(lux, 20.0, SkyCondition::Cloudy { drift: 0.05 }, 11);
        let scenario = Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(Packet::from_bits("00").unwrap()),
            0.25,
            sun,
        );
        let decoder = TwoPhaseDecoder::new(CarModel::volvo_v40(), 0.10, 2);
        let seeds: Vec<u64> = (0..trials).collect();
        scenario
            .delivery_count(&seeds, |trace| {
                decoder.decode(trace).map(|o| o.payload.to_string() == "00").unwrap_or(false)
            })
            .0
    };
    let at_450 = decode_rate(450.0);
    let at_100 = decode_rate(100.0);
    let at_60 = decode_rate(60.0);
    assert!(at_450 >= 10, "RX-LED must reliably decode at 450 lux: {at_450}/{trials}");
    assert!(at_100 <= 6, "RX-LED link must be unusable at 100 lux: {at_100}/{trials}");
    assert!(at_100 < at_450, "100 lux must be clearly worse than 450 lux");
    assert_eq!(at_60, 0, "RX-LED must be stone dead at 60 lux: {at_60}/{trials}");
}

#[test]
fn fig16_cap_rescues_the_pd() {
    use palc_lab::frontend::ApertureCap;
    let run = |capped: bool| -> usize {
        let sun = Sun::new(100.0, 15.0, SkyCondition::Cloudy { drift: 0.05 }, 12);
        let rx = if capped {
            ApertureCap::paper_cap().apply(&OpticalReceiver::opt101(PdGain::G2))
        } else {
            OpticalReceiver::opt101(PdGain::G2)
        };
        let scenario = Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(Packet::from_bits("00").unwrap()),
            0.25,
            sun,
        )
        .with_receiver(rx);
        let decoder = TwoPhaseDecoder::new(CarModel::volvo_v40(), 0.10, 2);
        scenario
            .delivery_count(&[0, 1, 2], |trace| {
                decoder.decode(trace).map(|o| o.payload.to_string() == "00").unwrap_or(false)
            })
            .0
    };
    assert_eq!(run(false), 0, "bare wide-FoV PD must fail on roof interference");
    assert!(run(true) >= 2, "capped PD must decode");
}

#[test]
fn fig8_distorted_pass_classifies_not_decodes() {
    use palc_lab::scene::Tag;
    let packet = Packet::from_bits("10").unwrap();
    let tag = Tag::from_packet(&packet, 0.03);
    let len = tag.length_m();
    let distorted =
        Scenario::indoor_bench_tag(tag, 0.20, Trajectory::fig8_speed_doubling(0.08, len + 0.16))
            .run(21);

    // Rigid decoder (paper's fixed windows) must not read '10'.
    let rigid = palc_lab::core::decode::AdaptiveDecoder { resync_gain: 0.0, ..Default::default() }
        .with_expected_bits(2);
    let misread = match rigid.decode(&distorted) {
        Ok(out) => out.payload.to_string() != "10",
        Err(_) => true,
    };
    assert!(misread, "speed doubling must defeat fixed windows");

    // DTW classification recovers the code.
    let mut db = TemplateDb::new();
    for bits in ["00", "10"] {
        db.add(bits, &Scenario::indoor_bench(Packet::from_bits(bits).unwrap(), 0.03, 0.20).run(42));
    }
    let result = DtwClassifier::new(db).classify(&distorted);
    assert_eq!(result.best().label, "10");
}

#[test]
fn receiver_selection_tracks_ambient() {
    let sel = ReceiverSelector::openvlc_dual();
    assert_eq!(sel.select_label(5.0), "PD(G1)");
    assert_eq!(sel.select_label(800.0), "PD(G2)");
    assert_eq!(sel.select_label(3000.0), "PD(G3)");
    assert_eq!(sel.select_label(20_000.0), "LED");
}

#[test]
fn dirt_distortion_degrades_gracefully() {
    use palc_lab::scene::Tag;
    // A heavily soiled tag: decode may fail, but the pipeline must not
    // produce a *wrong* accepted payload on the clean seed it can decode.
    let packet = Packet::from_bits("10").unwrap();
    let tag = Tag::from_packet(&packet, 0.03).with_dirt(0.9, 0.2, 5);
    let scenario = Scenario::indoor_bench_tag(tag, 0.20, Trajectory::indoor_bench());
    let decoder = AdaptiveDecoder::default().with_expected_bits(2);
    for seed in 0..5u64 {
        if let Ok(out) = decoder.decode(&scenario.run(seed)) {
            assert_eq!(out.payload.to_string(), "10", "seed {seed} decoded wrong payload");
        }
    }
}

#[test]
fn fog_reduces_but_does_not_corrupt() {
    use palc_lab::scene::{Environment, Fog};
    let packet = Packet::from_bits("10").unwrap();
    let clear = Scenario::outdoor_car(
        CarModel::volvo_v40(),
        Some(packet.clone()),
        0.75,
        Sun::cloudy_noon(4),
    );
    let foggy =
        Scenario::outdoor_car(CarModel::volvo_v40(), Some(packet), 0.75, Sun::cloudy_noon(4))
            .with_environment(Environment::parking_lot().with_fog(Fog::with_visibility(200.0)));
    let decoder = TwoPhaseDecoder::new(CarModel::volvo_v40(), 0.10, 2);
    let out_clear = decoder.decode(&clear.run(2)).expect("clear decodes");
    assert_eq!(out_clear.payload.to_string(), "10");
    // Light 200 m-visibility haze: still decodable (AGC compensates).
    if let Ok(out) = decoder.decode(&foggy.run(2)) {
        assert_eq!(out.payload.to_string(), "10");
    }
}

#[test]
fn lcd_shutter_tag_sends_different_codes_over_time() {
    use palc_lab::scene::{LcdShutterTag, MobileObject, Tag};
    // The Sec. 6 extension: the same physical tag shows '00' during the
    // first pass and '11' during a later pass.
    let frame_a = Tag::from_packet(&Packet::from_bits("00").unwrap(), 0.03);
    let frame_b = Tag::from_packet(&Packet::from_bits("11").unwrap(), 0.03);
    let decoder = AdaptiveDecoder::default().with_expected_bits(2);

    for (t_offset, expect) in [(0.0, "00"), (100.0, "11")] {
        // Frame period 100 s: pass 1 sees frame A, pass 2 frame B. We
        // emulate the later pass by shifting the shutter phase.
        let lcd = LcdShutterTag::new(vec![frame_a.clone(), frame_b.clone()], 100.0);
        let mut scenario = Scenario::indoor_bench(Packet::from_bits(expect).unwrap(), 0.03, 0.20);
        {
            let ch = scenario.channel_mut();
            ch.objects.clear();
            // Advance the shutter by starting the cart later in LCD time:
            // emulated by choosing which frame period the pass occurs in.
            let obj = if t_offset == 0.0 {
                MobileObject::lcd_cart(lcd, Trajectory::indoor_bench()).starting_at(-0.08)
            } else {
                let lcd_b = LcdShutterTag::new(vec![frame_b.clone(), frame_a.clone()], 100.0);
                MobileObject::lcd_cart(lcd_b, Trajectory::indoor_bench()).starting_at(-0.08)
            };
            ch.objects.push(obj);
        }
        let out = decoder.decode(&scenario.run(9)).expect("LCD frame decodes");
        assert_eq!(out.payload.to_string(), expect);
    }
}
