//! Property-based tests (proptest) on the workspace's core invariants.

use palc_lab::dsp;
use palc_lab::phy::{manchester_decode, manchester_encode, Bits, Codebook, Packet};
use proptest::prelude::*;

proptest! {
    // ---------------- PHY ------------------------------------------------

    #[test]
    fn manchester_roundtrips_any_payload(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
        let payload = Bits::from_bools(&bits);
        let symbols = manchester_encode(&payload);
        prop_assert_eq!(symbols.len(), 2 * payload.len());
        prop_assert_eq!(manchester_decode(&symbols).unwrap(), payload);
    }

    #[test]
    fn packet_symbols_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..32)) {
        let packet = Packet::new(Bits::from_bools(&bits));
        let back = Packet::from_symbols(&packet.to_symbols()).unwrap();
        prop_assert_eq!(back, packet);
    }

    #[test]
    fn bits_u64_roundtrip(value in any::<u64>(), width in 1usize..=64) {
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let bits = Bits::from_u64(masked, width);
        prop_assert_eq!(bits.len(), width);
        prop_assert_eq!(bits.to_u64(), masked);
    }

    #[test]
    fn hamming_distance_is_a_metric(
        a in proptest::collection::vec(any::<bool>(), 1..32),
        flips in proptest::collection::vec(any::<bool>(), 1..32),
    ) {
        let n = a.len().min(flips.len());
        let a = Bits::from_bools(&a[..n]);
        let b: Bits = a.iter().zip(flips.iter()).map(|(x, &f)| x ^ f).collect();
        let d = a.hamming_distance(&b);
        prop_assert_eq!(d, flips[..n].iter().filter(|&&f| f).count());
        prop_assert_eq!(b.hamming_distance(&a), d); // symmetry
        prop_assert_eq!(a.hamming_distance(&a), 0); // identity
    }

    #[test]
    fn codebook_nearest_corrects_within_budget(
        n_bits in 3usize..=8,
        count in 2usize..=4,
        code_idx in 0usize..4,
        flip_seed in any::<u64>(),
    ) {
        let book = Codebook::max_min_hamming(count, n_bits);
        let idx = code_idx % book.len();
        let budget = book.correctable_errors();
        // Flip up to `budget` bits deterministically from the seed.
        let mut word: Vec<bool> = book.codes()[idx].iter().collect();
        let mut s = flip_seed;
        let mut flipped = std::collections::HashSet::new();
        for _ in 0..budget {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pos = (s >> 33) as usize % n_bits;
            if flipped.insert(pos) {
                word[pos] = !word[pos];
            }
        }
        let (found, dist) = book.nearest(&Bits::from_bools(&word));
        prop_assert_eq!(found, idx, "flips {:?}", flipped);
        prop_assert!(dist <= budget);
    }

    // ---------------- DSP ------------------------------------------------

    #[test]
    fn fft_parseval(signal in proptest::collection::vec(-100.0f64..100.0, 1..128)) {
        let spec = dsp::fft(&signal);
        let time: f64 = signal.iter().map(|v| v * v).sum();
        let freq: f64 =
            spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / spec.len() as f64;
        prop_assert!((time - freq).abs() <= 1e-6 * time.max(1.0), "{time} vs {freq}");
    }

    #[test]
    fn fft_inverse_roundtrip(signal in proptest::collection::vec(-10.0f64..10.0, 1..100)) {
        let spec = dsp::fft(&signal);
        let back = dsp::fft_inverse(&spec);
        for (i, x) in signal.iter().enumerate() {
            prop_assert!((back[i].re - x).abs() < 1e-8);
            prop_assert!(back[i].im.abs() < 1e-8);
        }
    }

    #[test]
    fn dtw_identity_and_symmetry(
        a in proptest::collection::vec(0.0f64..1.0, 1..40),
        b in proptest::collection::vec(0.0f64..1.0, 1..40),
    ) {
        prop_assert_eq!(dsp::dtw(&a, &a).distance, 0.0);
        let ab = dsp::dtw(&a, &b).distance;
        let ba = dsp::dtw(&b, &a).distance;
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn dtw_banded_never_below_full(
        a in proptest::collection::vec(0.0f64..1.0, 2..30),
        b in proptest::collection::vec(0.0f64..1.0, 2..30),
        band in 1usize..10,
    ) {
        let full = dsp::dtw(&a, &b).distance;
        let banded = dsp::dtw_banded(&a, &b, band).distance;
        prop_assert!(banded >= full - 1e-9);
    }

    #[test]
    fn normalize_minmax_bounds(signal in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let norm = dsp::normalize_minmax(&signal);
        prop_assert_eq!(norm.len(), signal.len());
        for v in &norm {
            prop_assert!((0.0..=1.0).contains(v));
        }
        // Order preservation.
        for i in 0..signal.len() {
            for j in 0..signal.len() {
                if signal[i] < signal[j] {
                    prop_assert!(norm[i] <= norm[j]);
                }
            }
        }
    }

    #[test]
    fn resample_preserves_range(
        signal in proptest::collection::vec(0.0f64..1.0, 2..100),
        len in 2usize..200,
    ) {
        let out = dsp::resample_to_len(&signal, len);
        prop_assert_eq!(out.len(), len);
        let (lo, hi) = dsp::minmax(&signal);
        for v in &out {
            prop_assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12, "interpolation overshoot");
        }
    }

    #[test]
    fn moving_average_is_bounded_by_input(
        signal in proptest::collection::vec(-50.0f64..50.0, 1..100),
        window in 1usize..15,
    ) {
        let out = dsp::moving_average(&signal, window);
        let (lo, hi) = dsp::minmax(&signal);
        for v in &out {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
        }
    }

    #[test]
    fn peaks_sorted_and_in_range(signal in proptest::collection::vec(0.0f64..1.0, 3..150)) {
        let peaks = dsp::find_peaks(&signal, &dsp::PeakConfig::default());
        for w in peaks.windows(2) {
            prop_assert!(w[0].index < w[1].index);
        }
        for p in &peaks {
            prop_assert!(p.index < signal.len());
            prop_assert_eq!(p.value, signal[p.index]);
            prop_assert!(p.prominence >= 0.0);
        }
    }

    #[test]
    fn persistence_peaks_subset_of_looser_threshold(
        signal in proptest::collection::vec(0.0f64..1.0, 3..150),
        t in 0.05f64..0.5,
    ) {
        use palc_lab::dsp::peaks::find_peaks_persistence;
        let strict = find_peaks_persistence(&signal, t);
        let loose = find_peaks_persistence(&signal, t / 2.0);
        for p in &strict {
            prop_assert!(
                loose.iter().any(|q| q.index == p.index),
                "strict peak at {} missing at looser threshold",
                p.index
            );
        }
    }

    // ---------------- Frontend -------------------------------------------

    #[test]
    fn adc_quantization_monotone(a in 0.0f64..5.0, b in 0.0f64..5.0) {
        let adc = palc_lab::frontend::Mcp3008::openvlc_outdoor();
        if a <= b {
            prop_assert!(adc.quantize(a) <= adc.quantize(b));
        } else {
            prop_assert!(adc.quantize(a) >= adc.quantize(b));
        }
    }

    #[test]
    fn receiver_response_monotone_and_saturating(
        lux_a in 0.0f64..50_000.0,
        lux_b in 0.0f64..50_000.0,
    ) {
        use palc_lab::frontend::{OpticalReceiver, PdGain};
        for rx in [
            OpticalReceiver::opt101(PdGain::G1),
            OpticalReceiver::opt101(PdGain::G3),
            OpticalReceiver::rx_led(),
        ] {
            let (lo, hi) = if lux_a <= lux_b { (lux_a, lux_b) } else { (lux_b, lux_a) };
            prop_assert!(rx.respond(lo) <= rx.respond(hi) + 1e-12);
            prop_assert!(rx.respond(hi) <= rx.respond(rx.saturation_lux()) + 1e-12);
        }
    }

    // ---------------- Scene ----------------------------------------------

    #[test]
    fn trajectories_are_monotone(
        speed in 0.01f64..10.0,
        factor in 0.5f64..3.0,
        switch in 0.05f64..2.0,
        t_probe in proptest::collection::vec(0.0f64..20.0, 2..10),
    ) {
        use palc_lab::scene::Trajectory;
        let trajectories = [
            Trajectory::Constant { speed_mps: speed },
            Trajectory::StepChange { speed_mps: speed, switch_after_m: switch, factor },
            Trajectory::Jittered { speed_mps: speed, jitter: 0.3, segment_m: 0.05, seed: 1 },
        ];
        let mut ts = t_probe.clone();
        ts.sort_by(f64::total_cmp);
        for tr in &trajectories {
            let mut prev = -1e-12;
            for &t in &ts {
                let d = tr.displacement(t);
                prop_assert!(d >= prev - 1e-9, "{tr:?} not monotone at t={t}");
                prev = d;
            }
        }
    }

    #[test]
    fn tag_material_lookup_total_coverage(
        bits in proptest::collection::vec(any::<bool>(), 1..8),
        width in 0.01f64..0.2,
        x_frac in 0.0f64..1.0,
    ) {
        use palc_lab::scene::Tag;
        let packet = Packet::new(Bits::from_bools(&bits));
        let tag = Tag::from_packet(&packet, width);
        let x = x_frac * tag.length_m() * 0.999;
        prop_assert!(tag.material_at(x).is_some(), "gap inside the tag at {x}");
        prop_assert!(tag.material_at(tag.length_m() + 0.01).is_none());
        prop_assert!(tag.material_at(-0.01).is_none());
    }
}
