//! Property-based tests on the workspace's core invariants.
//!
//! The build environment is offline (no `proptest`), so these run on a
//! small deterministic harness: [`cases`] derives one seeded RNG per
//! case, generators draw structured inputs from it, and every failure
//! message carries the case index so a run is exactly reproducible.

use palc_lab::dsp;
use palc_lab::phy::{manchester_decode, manchester_encode, Bits, Codebook, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` over `n` deterministic cases, each with its own seeded RNG.
fn cases(n: usize, seed: u64, mut f: impl FnMut(&mut StdRng, usize)) {
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng, i);
    }
}

fn vec_bool(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<bool> {
    let len = rng.gen_range(min_len..max_len + 1);
    (0..len).map(|_| rng.gen::<bool>()).collect()
}

fn vec_f64(rng: &mut StdRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(min_len..max_len + 1);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

// ---------------- PHY ----------------------------------------------------

#[test]
fn manchester_roundtrips_any_payload() {
    cases(64, 0xA1, |rng, i| {
        let bits = vec_bool(rng, 0, 63);
        let payload = Bits::from_bools(&bits);
        let symbols = manchester_encode(&payload);
        assert_eq!(symbols.len(), 2 * payload.len(), "case {i}");
        assert_eq!(manchester_decode(&symbols).unwrap(), payload, "case {i}");
    });
}

#[test]
fn packet_symbols_roundtrip() {
    cases(64, 0xA2, |rng, i| {
        let bits = vec_bool(rng, 0, 31);
        let packet = Packet::new(Bits::from_bools(&bits));
        let back = Packet::from_symbols(&packet.to_symbols()).unwrap();
        assert_eq!(back, packet, "case {i}");
    });
}

#[test]
fn bits_u64_roundtrip() {
    cases(128, 0xA3, |rng, i| {
        let value = rng.gen::<u64>();
        let width = rng.gen_range(1usize..65);
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let bits = Bits::from_u64(masked, width);
        assert_eq!(bits.len(), width, "case {i}");
        assert_eq!(bits.to_u64(), masked, "case {i}");
    });
}

#[test]
fn hamming_distance_is_a_metric() {
    cases(64, 0xA4, |rng, i| {
        let a_bools = vec_bool(rng, 1, 31);
        let flips = vec_bool(rng, 1, 31);
        let n = a_bools.len().min(flips.len());
        let a = Bits::from_bools(&a_bools[..n]);
        let b: Bits = a.iter().zip(flips.iter()).map(|(x, &f)| x ^ f).collect();
        let d = a.hamming_distance(&b);
        assert_eq!(d, flips[..n].iter().filter(|&&f| f).count(), "case {i}");
        assert_eq!(b.hamming_distance(&a), d, "case {i}: symmetry");
        assert_eq!(a.hamming_distance(&a), 0, "case {i}: identity");
    });
}

#[test]
fn codebook_nearest_corrects_within_budget() {
    cases(48, 0xA5, |rng, i| {
        let n_bits = rng.gen_range(3usize..9);
        let count = rng.gen_range(2usize..5);
        let book = Codebook::max_min_hamming(count, n_bits);
        let idx = rng.gen_range(0usize..4) % book.len();
        let budget = book.correctable_errors();
        // Flip up to `budget` distinct bits.
        let mut word: Vec<bool> = book.codes()[idx].iter().collect();
        let mut flipped = std::collections::HashSet::new();
        for _ in 0..budget {
            let pos = rng.gen_range(0usize..n_bits);
            if flipped.insert(pos) {
                word[pos] = !word[pos];
            }
        }
        let (found, dist) = book.nearest(&Bits::from_bools(&word));
        assert_eq!(found, idx, "case {i}: flips {flipped:?}");
        assert!(dist <= budget, "case {i}");
    });
}

// ---------------- DSP ----------------------------------------------------

#[test]
fn fft_parseval() {
    cases(48, 0xB1, |rng, i| {
        let signal = vec_f64(rng, -100.0, 100.0, 1, 127);
        let spec = dsp::fft(&signal);
        let time: f64 = signal.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert!((time - freq).abs() <= 1e-6 * time.max(1.0), "case {i}: {time} vs {freq}");
    });
}

#[test]
fn fft_inverse_roundtrip() {
    cases(48, 0xB2, |rng, i| {
        let signal = vec_f64(rng, -10.0, 10.0, 1, 99);
        let spec = dsp::fft(&signal);
        let back = dsp::fft_inverse(&spec);
        for (j, x) in signal.iter().enumerate() {
            assert!((back[j].re - x).abs() < 1e-8, "case {i} sample {j}");
            assert!(back[j].im.abs() < 1e-8, "case {i} sample {j}");
        }
    });
}

#[test]
fn dtw_identity_and_symmetry() {
    cases(32, 0xB3, |rng, i| {
        let a = vec_f64(rng, 0.0, 1.0, 1, 39);
        let b = vec_f64(rng, 0.0, 1.0, 1, 39);
        assert_eq!(dsp::dtw(&a, &a).distance, 0.0, "case {i}");
        let ab = dsp::dtw(&a, &b).distance;
        let ba = dsp::dtw(&b, &a).distance;
        assert!((ab - ba).abs() < 1e-9, "case {i}");
        assert!(ab >= 0.0, "case {i}");
    });
}

#[test]
fn dtw_banded_never_below_full() {
    cases(32, 0xB4, |rng, i| {
        let a = vec_f64(rng, 0.0, 1.0, 2, 29);
        let b = vec_f64(rng, 0.0, 1.0, 2, 29);
        let band = rng.gen_range(1usize..10);
        let full = dsp::dtw(&a, &b).distance;
        let banded = dsp::dtw_banded(&a, &b, band).distance;
        assert!(banded >= full - 1e-9, "case {i}");
    });
}

#[test]
fn normalize_minmax_bounds() {
    cases(32, 0xB5, |rng, i| {
        let signal = vec_f64(rng, -1e6, 1e6, 1, 199);
        let norm = dsp::normalize_minmax(&signal);
        assert_eq!(norm.len(), signal.len(), "case {i}");
        for v in &norm {
            assert!((0.0..=1.0).contains(v), "case {i}");
        }
        // Order preservation.
        for a in 0..signal.len() {
            for b in 0..signal.len() {
                if signal[a] < signal[b] {
                    assert!(norm[a] <= norm[b], "case {i}: order broken at ({a}, {b})");
                }
            }
        }
    });
}

#[test]
fn resample_preserves_range() {
    cases(48, 0xB6, |rng, i| {
        let signal = vec_f64(rng, 0.0, 1.0, 2, 99);
        let len = rng.gen_range(2usize..200);
        let out = dsp::resample_to_len(&signal, len);
        assert_eq!(out.len(), len, "case {i}");
        let (lo, hi) = dsp::minmax(&signal);
        for v in &out {
            assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12, "case {i}: interpolation overshoot");
        }
    });
}

#[test]
fn moving_average_is_bounded_by_input() {
    cases(48, 0xB7, |rng, i| {
        let signal = vec_f64(rng, -50.0, 50.0, 1, 99);
        let window = rng.gen_range(1usize..15);
        let out = dsp::moving_average(&signal, window);
        let (lo, hi) = dsp::minmax(&signal);
        for v in &out {
            assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9, "case {i}");
        }
    });
}

#[test]
fn peaks_sorted_and_in_range() {
    cases(48, 0xB8, |rng, i| {
        let signal = vec_f64(rng, 0.0, 1.0, 3, 149);
        let peaks = dsp::find_peaks(&signal, &dsp::PeakConfig::default());
        for w in peaks.windows(2) {
            assert!(w[0].index < w[1].index, "case {i}");
        }
        for p in &peaks {
            assert!(p.index < signal.len(), "case {i}");
            assert_eq!(p.value, signal[p.index], "case {i}");
            assert!(p.prominence >= 0.0, "case {i}");
        }
    });
}

#[test]
fn persistence_peaks_subset_of_looser_threshold() {
    cases(48, 0xB9, |rng, i| {
        use palc_lab::dsp::peaks::find_peaks_persistence;
        let signal = vec_f64(rng, 0.0, 1.0, 3, 149);
        let t = rng.gen_range(0.05..0.5);
        let strict = find_peaks_persistence(&signal, t);
        let loose = find_peaks_persistence(&signal, t / 2.0);
        for p in &strict {
            assert!(
                loose.iter().any(|q| q.index == p.index),
                "case {i}: strict peak at {} missing at looser threshold",
                p.index
            );
        }
    });
}

// ---------------- Frontend -----------------------------------------------

#[test]
fn adc_quantization_monotone() {
    cases(128, 0xC1, |rng, i| {
        let adc = palc_lab::frontend::Mcp3008::openvlc_outdoor();
        let a = rng.gen_range(0.0..5.0);
        let b = rng.gen_range(0.0..5.0);
        if a <= b {
            assert!(adc.quantize(a) <= adc.quantize(b), "case {i}");
        } else {
            assert!(adc.quantize(a) >= adc.quantize(b), "case {i}");
        }
    });
}

#[test]
fn receiver_response_monotone_and_saturating() {
    use palc_lab::frontend::{OpticalReceiver, PdGain};
    cases(64, 0xC2, |rng, i| {
        let lux_a = rng.gen_range(0.0..50_000.0);
        let lux_b = rng.gen_range(0.0..50_000.0);
        for rx in [
            OpticalReceiver::opt101(PdGain::G1),
            OpticalReceiver::opt101(PdGain::G3),
            OpticalReceiver::rx_led(),
        ] {
            let (lo, hi) = if lux_a <= lux_b { (lux_a, lux_b) } else { (lux_b, lux_a) };
            assert!(rx.respond(lo) <= rx.respond(hi) + 1e-12, "case {i}");
            assert!(rx.respond(hi) <= rx.respond(rx.saturation_lux()) + 1e-12, "case {i}");
        }
    });
}

#[test]
fn frontend_streaming_equals_batch_on_random_series() {
    use palc_lab::frontend::{Frontend, OpticalReceiver, PdGain};
    use palc_lab::optics::spectrum::Spectrum;
    cases(16, 0xC3, |rng, i| {
        let seed = rng.gen::<u64>();
        let lux = vec_f64(rng, 0.0, 8000.0, 1, 400);
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), seed);
        let batch = fe.capture(&lux, &Spectrum::daylight());
        let mut state = fe.streamer(&Spectrum::daylight());
        let streamed: Vec<u16> = lux.iter().map(|&e| state.step(e)).collect();
        assert_eq!(batch, streamed, "case {i}");
    });
}

// ---------------- Scene --------------------------------------------------

#[test]
fn trajectories_are_monotone() {
    use palc_lab::scene::Trajectory;
    cases(32, 0xD1, |rng, i| {
        let speed = rng.gen_range(0.01..10.0);
        let factor = rng.gen_range(0.5..3.0);
        let switch = rng.gen_range(0.05..2.0);
        let trajectories = [
            Trajectory::Constant { speed_mps: speed },
            Trajectory::StepChange { speed_mps: speed, switch_after_m: switch, factor },
            Trajectory::Jittered { speed_mps: speed, jitter: 0.3, segment_m: 0.05, seed: 1 },
        ];
        let mut ts = vec_f64(rng, 0.0, 20.0, 2, 9);
        ts.sort_by(f64::total_cmp);
        for tr in &trajectories {
            let mut prev = -1e-12;
            for &t in &ts {
                let d = tr.displacement(t);
                assert!(d >= prev - 1e-9, "case {i}: {tr:?} not monotone at t={t}");
                prev = d;
            }
        }
    });
}

#[test]
fn tag_material_lookup_total_coverage() {
    use palc_lab::scene::Tag;
    cases(64, 0xD2, |rng, i| {
        let bits = vec_bool(rng, 1, 7);
        let width = rng.gen_range(0.01..0.2);
        let x_frac = rng.gen_range(0.0..1.0);
        let packet = Packet::new(Bits::from_bools(&bits));
        let tag = Tag::from_packet(&packet, width);
        let x = x_frac * tag.length_m() * 0.999;
        assert!(tag.material_at(x).is_some(), "case {i}: gap inside the tag at {x}");
        assert!(tag.material_at(tag.length_m() + 0.01).is_none(), "case {i}");
        assert!(tag.material_at(-0.01).is_none(), "case {i}");
    });
}

// ---------------- Channel: streaming == batch ----------------------------

/// The tentpole invariant: for any seed, the streaming `ChannelSampler`
/// produces the batch `Scenario::run` output sample for sample, across
/// all three paper scenario families (static lamp, mains-flicker ceiling
/// panel, drifting overcast sun).
#[test]
fn streamed_output_equals_batch_run_across_scenarios() {
    use palc_lab::core::channel::Scenario;
    use palc_lab::optics::source::Sun;
    use palc_lab::phy::Packet;
    use palc_lab::scene::CarModel;

    let scenarios: Vec<(&str, Scenario)> = vec![
        ("indoor_bench", Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20)),
        ("ceiling_office", Scenario::ceiling_office(Packet::from_bits("10").unwrap(), 0.03, 500.0)),
        (
            "outdoor_car",
            Scenario::outdoor_car(
                CarModel::volvo_v40(),
                Some(Packet::from_bits("00").unwrap()),
                0.75,
                Sun::cloudy_noon(1),
            ),
        ),
    ];
    cases(4, 0xE1, |rng, i| {
        let seed = rng.gen::<u64>();
        for (name, sc) in &scenarios {
            let batch = sc.run(seed);
            let streamed: Vec<f64> = sc.sampler(seed).collect();
            assert_eq!(
                batch.samples(),
                &streamed[..],
                "case {i} ({name}, seed {seed}): streamed != batch"
            );
        }
    });
}
