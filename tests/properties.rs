//! Property-based tests on the workspace's core invariants.
//!
//! The build environment is offline (no `proptest`), so these run on a
//! small deterministic harness: [`cases`] derives one seeded RNG per
//! case, generators draw structured inputs from it, and every failure
//! message carries the case index so a run is exactly reproducible.

use palc_lab::dsp;
use palc_lab::phy::{manchester_decode, manchester_encode, Bits, Codebook, Packet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` over `n` deterministic cases, each with its own seeded RNG.
fn cases(n: usize, seed: u64, mut f: impl FnMut(&mut StdRng, usize)) {
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng, i);
    }
}

fn vec_bool(rng: &mut StdRng, min_len: usize, max_len: usize) -> Vec<bool> {
    let len = rng.gen_range(min_len..max_len + 1);
    (0..len).map(|_| rng.gen::<bool>()).collect()
}

fn vec_f64(rng: &mut StdRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = rng.gen_range(min_len..max_len + 1);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

// ---------------- PHY ----------------------------------------------------

#[test]
fn manchester_roundtrips_any_payload() {
    cases(64, 0xA1, |rng, i| {
        let bits = vec_bool(rng, 0, 63);
        let payload = Bits::from_bools(&bits);
        let symbols = manchester_encode(&payload);
        assert_eq!(symbols.len(), 2 * payload.len(), "case {i}");
        assert_eq!(manchester_decode(&symbols).unwrap(), payload, "case {i}");
    });
}

#[test]
fn packet_symbols_roundtrip() {
    cases(64, 0xA2, |rng, i| {
        let bits = vec_bool(rng, 0, 31);
        let packet = Packet::new(Bits::from_bools(&bits));
        let back = Packet::from_symbols(&packet.to_symbols()).unwrap();
        assert_eq!(back, packet, "case {i}");
    });
}

#[test]
fn bits_u64_roundtrip() {
    cases(128, 0xA3, |rng, i| {
        let value = rng.gen::<u64>();
        let width = rng.gen_range(1usize..65);
        let masked = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let bits = Bits::from_u64(masked, width);
        assert_eq!(bits.len(), width, "case {i}");
        assert_eq!(bits.to_u64(), masked, "case {i}");
    });
}

#[test]
fn hamming_distance_is_a_metric() {
    cases(64, 0xA4, |rng, i| {
        let a_bools = vec_bool(rng, 1, 31);
        let flips = vec_bool(rng, 1, 31);
        let n = a_bools.len().min(flips.len());
        let a = Bits::from_bools(&a_bools[..n]);
        let b: Bits = a.iter().zip(flips.iter()).map(|(x, &f)| x ^ f).collect();
        let d = a.hamming_distance(&b);
        assert_eq!(d, flips[..n].iter().filter(|&&f| f).count(), "case {i}");
        assert_eq!(b.hamming_distance(&a), d, "case {i}: symmetry");
        assert_eq!(a.hamming_distance(&a), 0, "case {i}: identity");
    });
}

#[test]
fn codebook_nearest_corrects_within_budget() {
    cases(48, 0xA5, |rng, i| {
        let n_bits = rng.gen_range(3usize..9);
        let count = rng.gen_range(2usize..5);
        let book = Codebook::max_min_hamming(count, n_bits);
        let idx = rng.gen_range(0usize..4) % book.len();
        let budget = book.correctable_errors();
        // Flip up to `budget` distinct bits.
        let mut word: Vec<bool> = book.codes()[idx].iter().collect();
        let mut flipped = std::collections::HashSet::new();
        for _ in 0..budget {
            let pos = rng.gen_range(0usize..n_bits);
            if flipped.insert(pos) {
                word[pos] = !word[pos];
            }
        }
        let (found, dist) = book.nearest(&Bits::from_bools(&word));
        assert_eq!(found, idx, "case {i}: flips {flipped:?}");
        assert!(dist <= budget, "case {i}");
    });
}

// ---------------- DSP ----------------------------------------------------

#[test]
fn fft_parseval() {
    cases(48, 0xB1, |rng, i| {
        let signal = vec_f64(rng, -100.0, 100.0, 1, 127);
        let spec = dsp::fft(&signal);
        let time: f64 = signal.iter().map(|v| v * v).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / spec.len() as f64;
        assert!((time - freq).abs() <= 1e-6 * time.max(1.0), "case {i}: {time} vs {freq}");
    });
}

#[test]
fn fft_inverse_roundtrip() {
    cases(48, 0xB2, |rng, i| {
        let signal = vec_f64(rng, -10.0, 10.0, 1, 99);
        let spec = dsp::fft(&signal);
        let back = dsp::fft_inverse(&spec);
        for (j, x) in signal.iter().enumerate() {
            assert!((back[j].re - x).abs() < 1e-8, "case {i} sample {j}");
            assert!(back[j].im.abs() < 1e-8, "case {i} sample {j}");
        }
    });
}

#[test]
fn dtw_identity_and_symmetry() {
    cases(32, 0xB3, |rng, i| {
        let a = vec_f64(rng, 0.0, 1.0, 1, 39);
        let b = vec_f64(rng, 0.0, 1.0, 1, 39);
        assert_eq!(dsp::dtw(&a, &a).distance, 0.0, "case {i}");
        let ab = dsp::dtw(&a, &b).distance;
        let ba = dsp::dtw(&b, &a).distance;
        assert!((ab - ba).abs() < 1e-9, "case {i}");
        assert!(ab >= 0.0, "case {i}");
    });
}

#[test]
fn dtw_banded_never_below_full() {
    cases(32, 0xB4, |rng, i| {
        let a = vec_f64(rng, 0.0, 1.0, 2, 29);
        let b = vec_f64(rng, 0.0, 1.0, 2, 29);
        let band = rng.gen_range(1usize..10);
        let full = dsp::dtw(&a, &b).distance;
        let banded = dsp::dtw_banded(&a, &b, band).distance;
        assert!(banded >= full - 1e-9, "case {i}");
    });
}

#[test]
fn normalize_minmax_bounds() {
    cases(32, 0xB5, |rng, i| {
        let signal = vec_f64(rng, -1e6, 1e6, 1, 199);
        let norm = dsp::normalize_minmax(&signal);
        assert_eq!(norm.len(), signal.len(), "case {i}");
        for v in &norm {
            assert!((0.0..=1.0).contains(v), "case {i}");
        }
        // Order preservation.
        for a in 0..signal.len() {
            for b in 0..signal.len() {
                if signal[a] < signal[b] {
                    assert!(norm[a] <= norm[b], "case {i}: order broken at ({a}, {b})");
                }
            }
        }
    });
}

#[test]
fn resample_preserves_range() {
    cases(48, 0xB6, |rng, i| {
        let signal = vec_f64(rng, 0.0, 1.0, 2, 99);
        let len = rng.gen_range(2usize..200);
        let out = dsp::resample_to_len(&signal, len);
        assert_eq!(out.len(), len, "case {i}");
        let (lo, hi) = dsp::minmax(&signal);
        for v in &out {
            assert!(*v >= lo - 1e-12 && *v <= hi + 1e-12, "case {i}: interpolation overshoot");
        }
    });
}

#[test]
fn moving_average_is_bounded_by_input() {
    cases(48, 0xB7, |rng, i| {
        let signal = vec_f64(rng, -50.0, 50.0, 1, 99);
        let window = rng.gen_range(1usize..15);
        let out = dsp::moving_average(&signal, window);
        let (lo, hi) = dsp::minmax(&signal);
        for v in &out {
            assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9, "case {i}");
        }
    });
}

#[test]
fn peaks_sorted_and_in_range() {
    cases(48, 0xB8, |rng, i| {
        let signal = vec_f64(rng, 0.0, 1.0, 3, 149);
        let peaks = dsp::find_peaks(&signal, &dsp::PeakConfig::default());
        for w in peaks.windows(2) {
            assert!(w[0].index < w[1].index, "case {i}");
        }
        for p in &peaks {
            assert!(p.index < signal.len(), "case {i}");
            assert_eq!(p.value, signal[p.index], "case {i}");
            assert!(p.prominence >= 0.0, "case {i}");
        }
    });
}

#[test]
fn persistence_peaks_subset_of_looser_threshold() {
    cases(48, 0xB9, |rng, i| {
        use palc_lab::dsp::peaks::find_peaks_persistence;
        let signal = vec_f64(rng, 0.0, 1.0, 3, 149);
        let t = rng.gen_range(0.05..0.5);
        let strict = find_peaks_persistence(&signal, t);
        let loose = find_peaks_persistence(&signal, t / 2.0);
        for p in &strict {
            assert!(
                loose.iter().any(|q| q.index == p.index),
                "case {i}: strict peak at {} missing at looser threshold",
                p.index
            );
        }
    });
}

// ---------------- Frontend -----------------------------------------------

#[test]
fn adc_quantization_monotone() {
    cases(128, 0xC1, |rng, i| {
        let adc = palc_lab::frontend::Mcp3008::openvlc_outdoor();
        let a = rng.gen_range(0.0..5.0);
        let b = rng.gen_range(0.0..5.0);
        if a <= b {
            assert!(adc.quantize(a) <= adc.quantize(b), "case {i}");
        } else {
            assert!(adc.quantize(a) >= adc.quantize(b), "case {i}");
        }
    });
}

#[test]
fn receiver_response_monotone_and_saturating() {
    use palc_lab::frontend::{OpticalReceiver, PdGain};
    cases(64, 0xC2, |rng, i| {
        let lux_a = rng.gen_range(0.0..50_000.0);
        let lux_b = rng.gen_range(0.0..50_000.0);
        for rx in [
            OpticalReceiver::opt101(PdGain::G1),
            OpticalReceiver::opt101(PdGain::G3),
            OpticalReceiver::rx_led(),
        ] {
            let (lo, hi) = if lux_a <= lux_b { (lux_a, lux_b) } else { (lux_b, lux_a) };
            assert!(rx.respond(lo) <= rx.respond(hi) + 1e-12, "case {i}");
            assert!(rx.respond(hi) <= rx.respond(rx.saturation_lux()) + 1e-12, "case {i}");
        }
    });
}

#[test]
fn frontend_streaming_equals_batch_on_random_series() {
    use palc_lab::frontend::{Frontend, OpticalReceiver, PdGain};
    use palc_lab::optics::spectrum::Spectrum;
    cases(16, 0xC3, |rng, i| {
        let seed = rng.gen::<u64>();
        let lux = vec_f64(rng, 0.0, 8000.0, 1, 400);
        let fe = Frontend::outdoor(OpticalReceiver::opt101(PdGain::G2), seed);
        let batch = fe.capture(&lux, &Spectrum::daylight());
        let mut state = fe.streamer(&Spectrum::daylight());
        let streamed: Vec<u16> = lux.iter().map(|&e| state.step(e)).collect();
        assert_eq!(batch, streamed, "case {i}");
    });
}

// ---------------- Scene --------------------------------------------------

#[test]
fn trajectories_are_monotone() {
    use palc_lab::scene::Trajectory;
    cases(32, 0xD1, |rng, i| {
        let speed = rng.gen_range(0.01..10.0);
        let factor = rng.gen_range(0.5..3.0);
        let switch = rng.gen_range(0.05..2.0);
        let trajectories = [
            Trajectory::Constant { speed_mps: speed },
            Trajectory::StepChange { speed_mps: speed, switch_after_m: switch, factor },
            Trajectory::Jittered { speed_mps: speed, jitter: 0.3, segment_m: 0.05, seed: 1 },
        ];
        let mut ts = vec_f64(rng, 0.0, 20.0, 2, 9);
        ts.sort_by(f64::total_cmp);
        for tr in &trajectories {
            let mut prev = -1e-12;
            for &t in &ts {
                let d = tr.displacement(t);
                assert!(d >= prev - 1e-9, "case {i}: {tr:?} not monotone at t={t}");
                prev = d;
            }
        }
    });
}

#[test]
fn tag_material_lookup_total_coverage() {
    use palc_lab::scene::Tag;
    cases(64, 0xD2, |rng, i| {
        let bits = vec_bool(rng, 1, 7);
        let width = rng.gen_range(0.01..0.2);
        let x_frac = rng.gen_range(0.0..1.0);
        let packet = Packet::new(Bits::from_bools(&bits));
        let tag = Tag::from_packet(&packet, width);
        let x = x_frac * tag.length_m() * 0.999;
        assert!(tag.material_at(x).is_some(), "case {i}: gap inside the tag at {x}");
        assert!(tag.material_at(tag.length_m() + 0.01).is_none(), "case {i}");
        assert!(tag.material_at(-0.01).is_none(), "case {i}");
    });
}

// ---------------- Decode: streaming == batch ------------------------------

mod decode_equivalence {
    use super::cases;
    use palc_lab::core::channel::Scenario;
    use palc_lab::core::decode::{AdaptiveDecoder, DecodeError, DecodedPacket};
    use palc_lab::core::stream::{DecodeEvent, StreamingDecoder, StreamingTwoPhase};
    use palc_lab::core::vehicle::TwoPhaseDecoder;
    use palc_lab::core::Trace;
    use palc_lab::optics::source::Sun;
    use palc_lab::phy::Packet;
    use palc_lab::scene::CarModel;
    use rand::Rng;

    /// Collects a streaming run's first terminal event into the same
    /// `Result` shape the batch facade returns.
    fn first_terminal(
        events: impl IntoIterator<Item = DecodeEvent>,
    ) -> Option<Result<DecodedPacket, DecodeError>> {
        for ev in events {
            match ev {
                DecodeEvent::Packet(p) => return Some(Ok(p)),
                DecodeEvent::Reject(e) => return Some(Err(e)),
                _ => {}
            }
        }
        None
    }

    /// Feeds `trace` sample by sample into a span-hinted adaptive
    /// streaming decoder, exactly as a live receiver would.
    fn stream_adaptive(cfg: &AdaptiveDecoder, trace: &Trace) -> Result<DecodedPacket, DecodeError> {
        let (lo, hi) = trace.minmax();
        let mut dec = StreamingDecoder::with_scale(cfg.clone(), trace.sample_rate_hz(), lo, hi);
        let mut events = Vec::new();
        for &x in trace.samples() {
            if let Some(ev) = dec.push(x) {
                events.push(ev);
            }
            while let Some(ev) = dec.poll() {
                events.push(ev);
            }
        }
        events.extend(dec.finish());
        first_terminal(events).expect("a finished stream always resolves")
    }

    /// Same for the vehicular two-phase core.
    fn stream_two_phase(
        cfg: &TwoPhaseDecoder,
        trace: &Trace,
    ) -> Result<DecodedPacket, DecodeError> {
        let (lo, hi) = trace.minmax();
        let mut dec = StreamingTwoPhase::with_scale(cfg.clone(), trace.sample_rate_hz(), lo, hi);
        let mut events = Vec::new();
        for &x in trace.samples() {
            if let Some(ev) = dec.push(x) {
                events.push(ev);
            }
            while let Some(ev) = dec.poll() {
                events.push(ev);
            }
        }
        events.extend(dec.finish());
        first_terminal(events).expect("a finished stream always resolves")
    }

    /// Byte-level packet equality: identical symbols, payload bits, and
    /// bit-for-bit identical derived calibration.
    fn assert_identical(
        a: &Result<DecodedPacket, DecodeError>,
        b: &Result<DecodedPacket, DecodeError>,
        label: &str,
    ) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.symbols, y.symbols, "{label}: symbols");
                assert_eq!(x.payload, y.payload, "{label}: payload");
                for (u, v, field) in [
                    (x.tau_r, y.tau_r, "tau_r"),
                    (x.tau_t, y.tau_t, "tau_t"),
                    (x.threshold_level, y.threshold_level, "threshold_level"),
                    (x.point_a.t, y.point_a.t, "point_a.t"),
                    (x.point_a.r, y.point_a.r, "point_a.r"),
                    (x.point_b.t, y.point_b.t, "point_b.t"),
                    (x.point_b.r, y.point_b.r, "point_b.r"),
                    (x.point_c.t, y.point_c.t, "point_c.t"),
                    (x.point_c.r, y.point_c.r, "point_c.r"),
                ] {
                    assert_eq!(u.to_bits(), v.to_bits(), "{label}: {field}: {u} vs {v}");
                }
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "{label}: errors differ"),
            _ => panic!("{label}: outcome mismatch: batch {a:?} vs streaming {b:?}"),
        }
    }

    fn indoor_cfg() -> AdaptiveDecoder {
        AdaptiveDecoder::default().with_expected_bits(2)
    }

    fn ceiling_cfg() -> AdaptiveDecoder {
        AdaptiveDecoder { smooth_window_s: 0.012, ..AdaptiveDecoder::default() }
            .with_expected_bits(2)
    }

    fn outdoor_cfg() -> TwoPhaseDecoder {
        TwoPhaseDecoder::new(CarModel::volvo_v40(), 0.10, 2)
    }

    /// The tentpole acceptance invariant: on every scenario family, for
    /// any seed, a `StreamingDecoder` fed sample by sample produces a
    /// byte-identical packet (or the identical error) to the trace-based
    /// `decode()` — which is itself a drain over the same state machine,
    /// so this pins the push-path against the drain-path forever.
    #[test]
    fn streaming_decode_equals_batch_decode_across_scenarios() {
        let indoor = Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20);
        let ceiling = Scenario::ceiling_office(Packet::from_bits("10").unwrap(), 0.03, 500.0);
        let outdoor = Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(Packet::from_bits("00").unwrap()),
            0.75,
            Sun::cloudy_noon(4),
        );
        cases(4, 0xF1, |rng, i| {
            let seed = rng.gen::<u64>();
            for (name, sc, cfg) in [
                ("indoor_bench", &indoor, indoor_cfg()),
                ("ceiling_office", &ceiling, ceiling_cfg()),
            ] {
                let trace = sc.run(seed);
                let batch = cfg.decode(&trace);
                let streamed = stream_adaptive(&cfg, &trace);
                assert_identical(&batch, &streamed, &format!("case {i} ({name}, seed {seed})"));
            }
            let trace = outdoor.run(seed);
            let cfg = outdoor_cfg();
            let batch = cfg.decode(&trace);
            let streamed = stream_two_phase(&cfg, &trace);
            assert_identical(&batch, &streamed, &format!("case {i} (outdoor_car, seed {seed})"));
        });
    }

    /// Truncated streams: cutting the trace anywhere — mid lead-in, mid
    /// preamble, mid payload — must leave streaming and batch in byte
    /// agreement (both see the same shortened world).
    #[test]
    fn streaming_equals_batch_on_truncated_streams() {
        let indoor = Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20);
        let outdoor = Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(Packet::from_bits("00").unwrap()),
            0.75,
            Sun::cloudy_noon(4),
        );
        cases(3, 0xF2, |rng, i| {
            let seed = rng.gen::<u64>();
            let full = indoor.run(seed);
            let out_full = outdoor.run(seed);
            for frac in [0.12, 0.35, 0.6, 0.85] {
                let cut = (full.len() as f64 * frac) as usize;
                let trace = Trace::new(full.samples()[..cut].to_vec(), full.sample_rate_hz());
                let cfg = indoor_cfg();
                assert_identical(
                    &cfg.decode(&trace),
                    &stream_adaptive(&cfg, &trace),
                    &format!("case {i} (indoor truncated at {frac}, seed {seed})"),
                );
                let cut = (out_full.len() as f64 * frac) as usize;
                let trace =
                    Trace::new(out_full.samples()[..cut].to_vec(), out_full.sample_rate_hz());
                let cfg = outdoor_cfg();
                assert_identical(
                    &cfg.decode(&trace),
                    &stream_two_phase(&cfg, &trace),
                    &format!("case {i} (outdoor truncated at {frac}, seed {seed})"),
                );
            }
        });
    }

    /// Mid-preamble starts: a receiver switched on while the object is
    /// already passing sees a stream whose first samples sit inside the
    /// preamble. Streaming and batch must again agree byte for byte.
    #[test]
    fn streaming_equals_batch_on_mid_preamble_starts() {
        let indoor = Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20);
        cases(3, 0xF3, |rng, i| {
            let seed = rng.gen::<u64>();
            let full = indoor.run(seed);
            // The indoor preamble occupies roughly the second quarter of
            // the trace; start anywhere in the first half.
            for frac in [0.18, 0.28, 0.4] {
                let skip = (full.len() as f64 * frac) as usize + (rng.gen::<u64>() % 32) as usize;
                let trace = Trace::new(full.samples()[skip..].to_vec(), full.sample_rate_hz());
                let cfg = indoor_cfg();
                assert_identical(
                    &cfg.decode(&trace),
                    &stream_adaptive(&cfg, &trace),
                    &format!("case {i} (mid-preamble start at {frac}, seed {seed})"),
                );
            }
        });
    }

    /// The honest live path: a *self-scaling* streaming decoder (no span
    /// hint, running min–max + noise gate) decodes the same payloads the
    /// batch decoder reads from the completed traces.
    #[test]
    fn self_scaling_live_decode_agrees_with_batch_payloads() {
        let indoor = Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20);
        for seed in [1u64, 7, 42, 99] {
            let trace = indoor.run(seed);
            let batch = indoor_cfg().decode(&trace).expect("indoor bench decodes");
            let mut dec = StreamingDecoder::new(indoor_cfg(), trace.sample_rate_hz());
            let mut payloads = Vec::new();
            for &x in trace.samples() {
                if let Some(DecodeEvent::Packet(p)) = dec.push(x) {
                    payloads.push(p.payload.to_string());
                }
                while let Some(ev) = dec.poll() {
                    if let DecodeEvent::Packet(p) = ev {
                        payloads.push(p.payload.to_string());
                    }
                }
            }
            for ev in dec.finish() {
                if let DecodeEvent::Packet(p) = ev {
                    payloads.push(p.payload.to_string());
                }
            }
            assert_eq!(
                payloads,
                vec![batch.payload.to_string()],
                "seed {seed}: live decode must yield exactly the batch payload"
            );
        }
    }
}

// ---------------- Channel: kernel == incremental == staged == full -------

/// The four-tier integrator invariant: at every tick, the table-driven
/// [`FootprintKernel`], the incremental [`DeltaField`], the staged
/// integral, and the full per-tick integral agree to ≤ 1e-9 (relative),
/// on every scenario family (including the long outdoor crawl) and on
/// the adversarial scenes (overlapping objects, direction reversals,
/// parked objects, offset receiver poses) where the upper tiers must
/// fall back or freeze their caches.
mod four_tier_equivalence {
    use palc_lab::core::channel::{PassiveChannel, ReceiverPose, Resolution, Scenario};
    use palc_lab::optics::source::{PointLamp, Sun};
    use palc_lab::optics::Vec3;
    use palc_lab::phy::Packet;
    use palc_lab::scene::{CarModel, Environment, MobileObject, Tag, Trajectory};
    use std::sync::Arc;

    fn packet(bits: &str) -> Packet {
        Packet::from_bits(bits).unwrap()
    }

    /// Walks every ADC tick of `sc` at `pose`, comparing all four tiers
    /// patchwise.
    fn assert_tiers_agree_at(sc: &Scenario, pose: ReceiverPose, label: &str) {
        let ch = sc.channel();
        let field =
            Arc::new(ch.static_field_at(pose).unwrap_or_else(|| panic!("{label}: separable")));
        let mut delta =
            ch.delta_field(field.clone()).unwrap_or_else(|| panic!("{label}: piecewise-static"));
        let mut kernel = ch
            .footprint_kernel(field.clone())
            .unwrap_or_else(|| panic!("{label}: kernel-representable"));
        let fs = ch.frontend.sample_rate_hz();
        let n = (sc.duration_s() * fs).ceil() as usize;
        for i in 0..n {
            let t = i as f64 / fs;
            let tabled = kernel.illuminance(ch, t);
            let incremental = delta.illuminance(ch, t);
            let staged = ch.illuminance_staged(&field, t);
            let full = ch.illuminance_at_pose(pose, t);
            let tol = 1e-9 * full.abs().max(1.0);
            assert!(
                (tabled - incremental).abs() <= tol,
                "{label}: t={t}: kernel {tabled} vs incremental {incremental}"
            );
            assert!(
                (incremental - staged).abs() <= tol,
                "{label}: t={t}: incremental {incremental} vs staged {staged}"
            );
            assert!((staged - full).abs() <= tol, "{label}: t={t}: staged {staged} vs full {full}");
        }
    }

    /// [`assert_tiers_agree_at`] at the channel's own origin pose.
    fn assert_four_tiers_agree(sc: &Scenario, label: &str) {
        assert_tiers_agree_at(sc, sc.channel().pose(), label);
    }

    #[test]
    fn agrees_on_indoor_bench() {
        assert_four_tiers_agree(&Scenario::indoor_bench(packet("10"), 0.03, 0.20), "indoor");
    }

    #[test]
    fn agrees_on_ceiling_office() {
        assert_four_tiers_agree(&Scenario::ceiling_office(packet("10"), 0.03, 500.0), "ceiling");
    }

    #[test]
    fn agrees_on_outdoor_car() {
        let sc = Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(packet("00")),
            0.75,
            Sun::cloudy_noon(3),
        );
        assert_four_tiers_agree(&sc, "outdoor");
    }

    #[test]
    fn agrees_on_outdoor_car_long_crawl() {
        // The 5 km/h traffic-jam crawl: the car sits inside the footprint
        // for most of the run, so nearly every tick exercises the kernel's
        // covered-column lookups rather than entry/exit edges.
        let sc = Scenario::outdoor_car_pass(
            CarModel::volvo_v40(),
            Some(packet("00")),
            0.75,
            Sun::cloudy_noon(5),
            Trajectory::Constant { speed_mps: 1.4 },
            1.0,
        );
        assert_four_tiers_agree(&sc, "outdoor long crawl");
    }

    #[test]
    fn agrees_at_offset_receiver_poses() {
        // A receiver displaced along and across the track: pose-relative
        // geometry tables (column mappings shifted by the pose offset,
        // mirror geometry off-axis) must stay exact too.
        let sc = Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(packet("00")),
            0.75,
            Sun::cloudy_noon(4),
        );
        let z = sc.channel().receiver_z_m;
        assert_tiers_agree_at(&sc, ReceiverPose::new(1.3, 0.4, z), "offset outdoor");
        let office = Scenario::ceiling_office(packet("10"), 0.03, 500.0);
        let z = office.channel().receiver_z_m;
        assert_tiers_agree_at(&office, ReceiverPose::new(-0.28, 0.07, z), "offset ceiling");
    }

    #[test]
    fn agrees_with_same_lane_overlap() {
        // A faster cart catches up with and overtakes a slower one in the
        // same lane: apart → occluding → apart, exercising the fallback
        // ticks and the exact cache resume.
        let mut sc = Scenario::indoor_bench(packet("10"), 0.03, 0.25);
        let chaser = MobileObject::cart(
            Tag::from_packet(&packet("0"), 0.04),
            Trajectory::Constant { speed_mps: 0.18 },
        )
        .starting_at(-0.34);
        sc.channel_mut().objects.push(chaser);
        sc.calibrate_gain();
        assert_four_tiers_agree(&sc, "same-lane overlap");
    }

    #[test]
    fn agrees_with_disjoint_lane_neighbours() {
        // Column ranges overlap but lane bands are disjoint: both objects
        // stay incremental throughout.
        let mut sc = Scenario::indoor_bench(packet("10"), 0.03, 0.25);
        let neighbour =
            MobileObject::cart(Tag::from_packet(&packet("0"), 0.05), Trajectory::indoor_bench())
                .starting_at(-0.12)
                .in_lane(0.31);
        sc.channel_mut().objects.push(neighbour);
        sc.calibrate_gain();
        assert_four_tiers_agree(&sc, "disjoint lanes");
    }

    #[test]
    fn agrees_on_direction_reversing_shuttle() {
        let object = MobileObject::cart(
            Tag::from_packet(&packet("10"), 0.03),
            Trajectory::Shuttle { speed_mps: 0.12, span_m: 0.35 },
        )
        .starting_at(-0.20);
        let order = palc_lab::optics::photometry::lambertian_order_from_half_angle(6.0);
        let lamp = PointLamp::new(Vec3::new(0.0, 0.0, 0.25), 10.0).with_order(order);
        let receiver = palc_lab::frontend::OpticalReceiver::opt101(palc_lab::frontend::PdGain::G1);
        let sc = Scenario::custom(
            PassiveChannel {
                environment: Environment::dark_room(),
                source: Box::new(lamp),
                objects: vec![object],
                receiver_z_m: 0.25,
                frontend: palc_lab::frontend::Frontend::indoor(receiver, 0),
                resolution: Resolution { along_m: 0.004, lateral_slices: 3 },
            },
            7.0, // > one full shuttle period
        );
        assert_four_tiers_agree(&sc, "shuttle");
    }

    #[test]
    fn agrees_on_parked_car_scene() {
        // A parked car under a drifting overcast sky: the staged tier
        // re-integrates the whole (fully covered) footprint every tick,
        // the incremental tier integrates it exactly once — and both must
        // match the full integral for the entire run.
        let parked =
            MobileObject::car(CarModel::bmw_3(), None, Trajectory::Constant { speed_mps: 0.0 })
                .starting_at(2.3); // centred over the receiver nadir
        let receiver_z = CarModel::bmw_3().max_height_m() + 0.75;
        let sc = Scenario::custom(
            PassiveChannel {
                environment: Environment::parking_lot(),
                source: Box::new(Sun::cloudy_noon(8)),
                objects: vec![parked],
                receiver_z_m: receiver_z,
                frontend: palc_lab::frontend::Frontend::outdoor(
                    palc_lab::frontend::OpticalReceiver::rx_led(),
                    0,
                ),
                resolution: Resolution { along_m: 0.02, lateral_slices: 5 },
            },
            1.5,
        );
        assert_four_tiers_agree(&sc, "parked car");
    }
}

// ---------------- Fleet scaling: indexed vs unindexed tiers ---------------

/// The scaling layer's exactness contract: the kernel's build-time
/// culling, parked aggregate, event queue and interned tables are pure
/// work-avoidance — on thousand-object fleets and on adversarial
/// geometries (everything in one lane band, objects straddling the index
/// window boundary, movers crossing a frozen cluster) every tick must
/// match the unindexed tiers to ≤ 1e-9.
mod fleet_scaling {
    use palc_lab::core::channel::{ReceiverPose, Scenario};
    use palc_lab::phy::Packet;
    use palc_lab::scene::{CarModel, MobileObject, Tag, Trajectory};
    use std::sync::Arc;

    fn packet(bits: &str) -> Packet {
        Packet::from_bits(bits).unwrap()
    }

    /// Four-tier agreement on every `stride`-th ADC tick at `pose` —
    /// fleet scenes are too large to walk the full per-tick reference
    /// densely, and the kernel's event cursor only needs monotone time.
    fn assert_tiers_agree_sparse_at(sc: &Scenario, pose: ReceiverPose, stride: usize, label: &str) {
        let ch = sc.channel();
        let field =
            Arc::new(ch.static_field_at(pose).unwrap_or_else(|| panic!("{label}: separable")));
        let mut delta =
            ch.delta_field(field.clone()).unwrap_or_else(|| panic!("{label}: piecewise-static"));
        let mut kernel = ch
            .footprint_kernel(field.clone())
            .unwrap_or_else(|| panic!("{label}: kernel-representable"));
        let fs = ch.frontend.sample_rate_hz();
        let n = (sc.duration_s() * fs).ceil() as usize;
        for i in (0..n).step_by(stride) {
            let t = i as f64 / fs;
            let tabled = kernel.illuminance(ch, t);
            let incremental = delta.illuminance(ch, t);
            let staged = ch.illuminance_staged(&field, t);
            let full = ch.illuminance_at_pose(pose, t);
            let tol = 1e-9 * full.abs().max(1.0);
            assert!(
                (tabled - incremental).abs() <= tol,
                "{label}: t={t}: kernel {tabled} vs incremental {incremental}"
            );
            assert!(
                (incremental - staged).abs() <= tol,
                "{label}: t={t}: incremental {incremental} vs staged {staged}"
            );
            assert!((staged - full).abs() <= tol, "{label}: t={t}: staged {staged} vs full {full}");
        }
    }

    fn assert_tiers_agree_sparse(sc: &Scenario, stride: usize, label: &str) {
        assert_tiers_agree_sparse_at(sc, sc.channel().pose(), stride, label);
    }

    #[test]
    fn parking_structure_1000_objects_indexed_matches_unindexed() {
        let sc = Scenario::parking_structure(1000, 3, Some(packet("10")));
        let stats = sc.sampler(0).kernel_stats().expect("kernel stats");
        assert!(stats.objects_culled > 900, "index must prune the far rows: {stats:?}");
        assert_tiers_agree_sparse(&sc, 457, "parking 1000");
    }

    #[test]
    fn highway_multilane_indexed_matches_unindexed() {
        // Every object transits the footprint: the event queue (not
        // culling) carries the whole scaling load here.
        let sc = Scenario::highway_multilane(300, Some(packet("10")));
        let stats = sc.sampler(0).kernel_stats().expect("kernel stats");
        assert_eq!(stats.objects_culled, 0, "{stats:?}");
        assert!(stats.tables_interned > stats.tables_built, "{stats:?}");
        assert_tiers_agree_sparse(&sc, 457, "highway 300");
    }

    #[test]
    fn fleet_agrees_at_offset_receiver_pose() {
        // The index is built per pose: a displaced receiver culls a
        // *different* neighbourhood and must stay exact there.
        let sc = Scenario::parking_structure(120, 2, Some(packet("10")));
        let z = sc.channel().receiver_z_m;
        assert_tiers_agree_sparse_at(&sc, ReceiverPose::new(2.6, 0.3, z), 229, "offset fleet");
    }

    #[test]
    fn mover_crossing_a_frozen_single_lane_cluster() {
        // Adversarial: every object in ONE lane band. Parked tags spaced
        // along lane 0 form a frozen cluster; a mover drives straight
        // through, so its span enters and leaves each parked object's
        // columns in turn — the mover–parked overlap fallback must fire
        // exactly while they overlap and hand back to the fast path in
        // between, bit-exact throughout.
        let mut sc = Scenario::indoor_bench(packet("10"), 0.03, 0.25);
        for k in 0..4 {
            let parked = MobileObject::cart(
                Tag::from_packet(&packet("0"), 0.04),
                Trajectory::Constant { speed_mps: 0.0 },
            )
            .starting_at(-0.15 + 0.16 * k as f64)
            .at_height(0.015);
            sc.channel_mut().objects.push(parked);
        }
        sc.calibrate_gain();
        let stats = sc.sampler(0).kernel_stats().expect("kernel stats");
        assert_eq!(stats.objects_parked + stats.objects_movers + stats.objects_culled, 5);
        assert_tiers_agree_sparse(&sc, 1, "single-lane cluster");
    }

    #[test]
    fn overlapping_parked_cluster_serves_every_tick_staged() {
        // Adversarial: two parked tags overlap in both columns and lane
        // band, a conflict that never clears — the kernel must detect it
        // at build time and serve the whole run from the staged tier,
        // still within tolerance of every other tier.
        let mut sc = Scenario::indoor_bench(packet("10"), 0.03, 0.25);
        for start in [0.05, 0.09] {
            let parked = MobileObject::cart(
                Tag::from_packet(&packet("0"), 0.04),
                Trajectory::Constant { speed_mps: 0.0 },
            )
            .starting_at(start)
            .at_height(0.015);
            sc.channel_mut().objects.push(parked);
        }
        sc.calibrate_gain();
        assert_tiers_agree_sparse(&sc, 1, "overlapping parked cluster");
    }

    #[test]
    fn objects_straddling_the_index_window_boundary() {
        // Adversarial: parked cars placed right at the footprint
        // window's edges — just inside (kept, near-zero tables) and
        // clearly outside (culled) — plus the culled-count bookkeeping.
        let mut sc = Scenario::parking_structure(5, 1, Some(packet("10")));
        let z = sc.channel().receiver_z_m;
        let r = sc.channel().frontend.receiver.fov().footprint_radius(z);
        let len = CarModel::volvo_v40().length_m();
        let lane = 1.95;
        let edge = r + 2.0 * 0.05; // grid r_max + the build-time margin
        let straddlers = [
            // Leading edge a hair inside the near boundary.
            (-(edge) + 0.01, lane),
            // Trailing edge a hair inside the far boundary.
            (edge + len - 0.01, lane),
            // Fully beyond the far boundary: must be culled.
            (edge + len + 0.5, -lane),
        ];
        for (start, y) in straddlers {
            let car = MobileObject::car(
                CarModel::volvo_v40(),
                None,
                Trajectory::Constant { speed_mps: 0.0 },
            )
            .starting_at(start)
            .in_lane(y);
            sc.channel_mut().objects.push(car);
        }
        sc.calibrate_gain();
        let stats = sc.sampler(0).kernel_stats().expect("kernel stats");
        assert!(stats.objects_culled >= 1, "the fully-outside car must be culled: {stats:?}");
        assert_tiers_agree_sparse(&sc, 23, "window straddlers");
    }
}

// ---------------- Receiver arrays: shards == serial, fusion ---------------

/// The sharding invariants: a multi-receiver array run fans one scene's
/// shared objects across workers, and each shard's decode is
/// byte-identical to the same receiver simulated serially; staggered
/// poses see the pass at different times, and the online fusion layer
/// still resolves one event with one *distinct* vote per receiver.
mod receiver_arrays {
    use palc_lab::core::channel::{PassiveChannel, ReceiverPose, Resolution, Scenario};
    use palc_lab::core::decode::AdaptiveDecoder;
    use palc_lab::core::fusion::FusionCenter;
    use palc_lab::core::stream::{DecodeEvent, StreamingTwoPhase};
    use palc_lab::core::sweep::{ArrayOutcome, ArrayReceiver, SweepRunner};
    use palc_lab::core::vehicle::TwoPhaseDecoder;
    use palc_lab::optics::source::Sun;
    use palc_lab::phy::Packet;
    use palc_lab::scene::{CarModel, Environment, MobileObject, Tag, Trajectory};

    /// The Sec. 5 vehicular link: one car pass shared by a gantry of
    /// receivers running two-phase shards.
    fn outdoor() -> Scenario {
        Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(Packet::from_bits("00").unwrap()),
            0.75,
            Sun::cloudy_noon(5),
        )
    }

    /// Distinct staggered gantry poses over the car lane: one across the
    /// lane, one on-axis, two downstream (the last well past the base
    /// scenario's duration, so shard-duration stretching is exercised).
    fn gantry(z: f64) -> [ReceiverPose; 4] {
        [
            ReceiverPose::new(0.0, -0.35, z),
            ReceiverPose::origin(z),
            ReceiverPose::new(1.2, 0.35, z),
            ReceiverPose::new(2.5, 0.0, z),
        ]
    }

    /// An RX-LED line of sky-lit readers (the paper's Fig. 17 receiver,
    /// outdoors under a uniform overcast sky): a tag cart rolls past
    /// three staggered narrow-FoV receivers, each seeing the pass
    /// seconds apart — the adaptive-decoder convenience path.
    fn sky_readers() -> Scenario {
        let tag = Tag::from_packet(&Packet::from_bits("10").unwrap(), 0.04);
        let len = tag.length_m();
        let object =
            MobileObject::cart(tag, Trajectory::Constant { speed_mps: 0.25 }).starting_at(-0.15);
        let duration = (len + 0.9) / 0.25 + 0.2;
        let receiver = palc_lab::frontend::OpticalReceiver::rx_led();
        let frontend = palc_lab::frontend::Frontend::indoor(receiver, 0);
        Scenario::custom(
            PassiveChannel {
                environment: Environment::parking_lot(),
                source: Box::new(Sun::cloudy_noon(6)),
                objects: vec![object],
                receiver_z_m: 0.35,
                frontend,
                resolution: Resolution { along_m: 0.005, lateral_slices: 3 },
            },
            duration,
        )
    }

    /// Byte-level equality of two shard event logs: same events at the
    /// same stream times, packets identical down to the calibration bits.
    fn assert_events_identical(a: &ArrayOutcome, b: &ArrayOutcome, label: &str) {
        assert_eq!(a.events.len(), b.events.len(), "{label}: event count");
        for (i, (x, y)) in a.events.iter().zip(&b.events).enumerate() {
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits(), "{label}: event {i} time");
            match (&x.event, &y.event) {
                (DecodeEvent::Packet(p), DecodeEvent::Packet(q)) => {
                    assert_eq!(p.symbols, q.symbols, "{label}: event {i} symbols");
                    assert_eq!(p.payload, q.payload, "{label}: event {i} payload");
                    for (u, v, f) in [
                        (p.tau_r, q.tau_r, "tau_r"),
                        (p.tau_t, q.tau_t, "tau_t"),
                        (p.threshold_level, q.threshold_level, "threshold_level"),
                    ] {
                        assert_eq!(u.to_bits(), v.to_bits(), "{label}: event {i} {f}");
                    }
                }
                (ev_a, ev_b) => {
                    assert_eq!(format!("{ev_a:?}"), format!("{ev_b:?}"), "{label}: event {i} kind");
                }
            }
        }
    }

    #[test]
    fn sharded_array_equals_per_receiver_serial_runs() {
        let sc = outdoor();
        let z = sc.channel().receiver_z_m;
        let receivers: Vec<ArrayReceiver> = gantry(z)
            .iter()
            .enumerate()
            .map(|(i, &pose)| ArrayReceiver { id: i as u32, pose, seed: i as u64 })
            .collect();
        let fs = sc.channel().frontend.sample_rate_hz();
        let mk = |_: &ArrayReceiver| {
            StreamingTwoPhase::new(TwoPhaseDecoder::new(CarModel::volvo_v40(), 0.10, 2), fs)
        };
        let run =
            sc.run_array_streaming_on(&SweepRunner::new(), &receivers, FusionCenter::default(), mk);
        assert_eq!(run.outcomes.len(), receivers.len());
        for (rx, outcome) in receivers.iter().zip(&run.outcomes) {
            assert_eq!(outcome.receiver, *rx, "outcomes keep input order");
            let serial = sc.run_shard(*rx, mk(rx));
            assert_events_identical(outcome, &serial, &format!("receiver {}", rx.id));
            let n: usize = outcome.packets().count();
            assert!(n >= 1, "receiver {} at {:?} must decode the pass", rx.id, rx.pose);
            assert!(
                outcome.packets().all(|p| p.payload.to_string() == "00"),
                "receiver {} payload",
                rx.id
            );
        }
        // Downstream receivers see the pass later, in pose order.
        let first_detection =
            |o: &ArrayOutcome| o.detections().next().map(|d| d.time_s).expect("decoded");
        let t_origin = first_detection(&run.outcomes[1]);
        let t_mid = first_detection(&run.outcomes[2]);
        let t_far = first_detection(&run.outcomes[3]);
        assert!(
            t_origin < t_mid && t_mid < t_far,
            "stagger must order detections: {t_origin} {t_mid} {t_far}"
        );
        // One pass, one fused event, one vote per distinct receiver.
        assert_eq!(run.fused.len(), 1);
        assert_eq!(run.fused[0].payload.to_string(), "00");
        assert_eq!(run.fused[0].receivers, 4);
    }

    #[test]
    fn staggered_array_fuses_one_event_with_distinct_receivers() {
        let sc = sky_readers();
        let z = sc.channel().receiver_z_m;
        let poses = [
            ReceiverPose::new(0.0, -0.05, z),
            ReceiverPose::new(0.3, 0.0, z),
            ReceiverPose::new(0.62, 0.06, z),
        ];
        let cfg = AdaptiveDecoder::default().with_expected_bits(2);
        // The window must cover the pass's full ~2.5 s stagger across
        // the poses (the documented contract): detections reach the
        // online fusion stream in cross-thread arrival order, so a
        // window smaller than the stagger could fragment the pass
        // depending on worker scheduling.
        let run = sc.run_array_streaming(
            &poses,
            &cfg,
            FusionCenter { window_s: 4.0, ..FusionCenter::default() },
        );
        assert_eq!(
            run.fused.len(),
            1,
            "one pass, one fused event (got {:?})",
            run.fused.iter().map(|e| (e.payload.to_string(), e.time_s)).collect::<Vec<_>>()
        );
        let event = &run.fused[0];
        assert_eq!(event.payload.to_string(), "10");
        assert_eq!(event.receivers, 3, "distinct receivers, not detection count");
        assert_eq!(event.agreeing, 3);
        // The stagger is real: 0.62 m at 0.25 m/s is ~2.5 s of spread
        // between the first and last receiver's view of the same pass.
        let times: Vec<f64> = run
            .outcomes
            .iter()
            .flat_map(|o| o.detections().map(|d| d.time_s).collect::<Vec<_>>())
            .collect();
        let (lo, hi) = times.iter().fold((f64::MAX, f64::MIN), |(l, h), &t| (l.min(t), h.max(t)));
        assert!(
            hi - lo > 2.0,
            "staggered poses must detect the pass at different times: spread {}",
            hi - lo
        );
    }
}

// ---------------- Channel: streaming == batch ----------------------------

/// The tentpole invariant: for any seed, the streaming `ChannelSampler`
/// produces the batch `Scenario::run` output sample for sample, across
/// all three paper scenario families (static lamp, mains-flicker ceiling
/// panel, drifting overcast sun).
#[test]
fn streamed_output_equals_batch_run_across_scenarios() {
    use palc_lab::core::channel::Scenario;
    use palc_lab::optics::source::Sun;
    use palc_lab::phy::Packet;
    use palc_lab::scene::CarModel;

    let scenarios: Vec<(&str, Scenario)> = vec![
        ("indoor_bench", Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20)),
        ("ceiling_office", Scenario::ceiling_office(Packet::from_bits("10").unwrap(), 0.03, 500.0)),
        (
            "outdoor_car",
            Scenario::outdoor_car(
                CarModel::volvo_v40(),
                Some(Packet::from_bits("00").unwrap()),
                0.75,
                Sun::cloudy_noon(1),
            ),
        ),
    ];
    cases(4, 0xE1, |rng, i| {
        let seed = rng.gen::<u64>();
        for (name, sc) in &scenarios {
            let batch = sc.run(seed);
            let streamed: Vec<f64> = sc.sampler(seed).collect();
            assert_eq!(
                batch.samples(),
                &streamed[..],
                "case {i} ({name}, seed {seed}): streamed != batch"
            );
        }
    });
}

// ---------------- Impairments: structure, determinism, conformance --------

mod impairments {
    use super::cases;
    use palc_lab::core::channel::Scenario;
    use palc_lab::core::decode::AdaptiveDecoder;
    use palc_lab::core::impair::{BurstNoise, Dropout, ImpairmentStack, Interference, Jitter};
    use palc_lab::core::stream::{DecodeEvent, StreamingDecoder, StreamingTwoPhase};
    use palc_lab::core::vehicle::TwoPhaseDecoder;
    use palc_lab::optics::source::Sun;
    use palc_lab::phy::Packet;
    use palc_lab::scene::CarModel;
    use rand::Rng;

    fn indoor() -> Scenario {
        Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20)
    }

    fn outdoor() -> Scenario {
        Scenario::outdoor_car(
            CarModel::volvo_v40(),
            Some(Packet::from_bits("00").unwrap()),
            0.75,
            Sun::cloudy_noon(1),
        )
    }

    /// A representative non-trivial stack: one layer of every kind, on
    /// top of the scenario's own clean swing.
    fn full_stack(sc: &Scenario) -> ImpairmentStack {
        let (lo, hi) = sc.run_clean().minmax();
        let swing = hi - lo;
        let rival = Scenario::indoor_bench(Packet::from_bits("01").unwrap(), 0.05, 0.20);
        ImpairmentStack::clean()
            .with(Interference::from_scenario(&rival, 0.1 * swing))
            .with(BurstNoise::with_severity(0.5, swing))
            .with(Dropout::with_severity(0.5))
            .with(Jitter::with_severity(0.5, 94.0))
    }

    /// The identity stack leaves a real channel stream byte-identical:
    /// `run_impaired` with no layers IS `run` — same noise draws, same
    /// order, no resampling.
    #[test]
    fn identity_stack_is_byte_identical_on_the_real_channel() {
        let sc = indoor();
        cases(4, 0xA70, |rng, i| {
            let seed = rng.gen::<u64>();
            let plain = sc.run(seed);
            let stacked = sc.run_impaired(seed, &ImpairmentStack::clean());
            assert_eq!(plain.samples(), stacked.samples(), "case {i} seed {seed}");
        });
    }

    /// Severity 0 of every layer is a structural no-op, so a stack of
    /// them is still the identity — not merely "small" perturbations.
    #[test]
    fn severity_zero_stack_is_a_noop_on_the_real_channel() {
        let sc = indoor();
        let stack = ImpairmentStack::clean()
            .with(BurstNoise::with_severity(0.0, 100.0))
            .with(Dropout::with_severity(0.0))
            .with(Jitter::with_severity(0.0, 94.0));
        assert!(stack.is_noop());
        cases(3, 0xA71, |rng, i| {
            let seed = rng.gen::<u64>();
            assert_eq!(
                sc.run(seed).samples(),
                sc.run_impaired(seed, &stack).samples(),
                "case {i} seed {seed}"
            );
        });
    }

    /// One seed, one output: the full stack re-applied to the same
    /// scenario and seed reproduces itself bit for bit, and a different
    /// seed diverges (the layers actually draw from their RNGs).
    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let sc = indoor();
        let stack = full_stack(&sc);
        cases(3, 0xA72, |rng, i| {
            let seed = rng.gen::<u64>();
            let a = sc.run_impaired(seed, &stack);
            let b = sc.run_impaired(seed, &stack);
            assert_eq!(a.samples(), b.samples(), "case {i} seed {seed}: not reproducible");
            let c = sc.run_impaired(seed ^ 1, &stack);
            assert_ne!(a.samples(), c.samples(), "case {i} seed {seed}: seed ignored");
        });
    }

    /// Dropout on a strictly increasing probe stream never reorders:
    /// hold-last erasures repeat values but the output stays
    /// non-decreasing, and every output value appeared in the input.
    #[test]
    fn dropout_never_reorders_a_monotone_stream() {
        cases(4, 0xA73, |rng, i| {
            let n = 4000usize;
            let probe: Vec<f64> = (0..n).map(|k| k as f64).collect();
            let stack =
                ImpairmentStack::clean().with(Dropout::with_severity(rng.gen_range(0.1..1.0)));
            let out = stack.apply_slice(rng.gen::<u64>(), &probe);
            assert_eq!(out.len(), n, "case {i}: length changed");
            for w in out.windows(2) {
                assert!(w[1] >= w[0], "case {i}: reordered: {} then {}", w[0], w[1]);
            }
            assert!(out.iter().all(|v| v.fract() == 0.0 && *v >= 0.0 && *v < n as f64));
        });
    }

    /// Jitter displaces every sample strictly less than its window, and
    /// the output is a permutation of the input (an index probe makes
    /// both checks exact).
    #[test]
    fn jitter_displacement_is_bounded_by_the_window() {
        cases(4, 0xA74, |rng, i| {
            let n = 3000usize;
            let window = rng.gen_range(2..80usize);
            let probe: Vec<f64> = (0..n).map(|k| k as f64).collect();
            let stack = ImpairmentStack::clean().with(Jitter { window });
            let out = stack.apply_slice(rng.gen::<u64>(), &probe);
            assert_eq!(out.len(), n, "case {i}: length changed");
            let mut seen = vec![false; n];
            for (pos, v) in out.iter().enumerate() {
                let orig = *v as usize;
                assert!(
                    pos.abs_diff(orig) < window,
                    "case {i}: sample {orig} moved to {pos}, window {window}"
                );
                assert!(!seen[orig], "case {i}: sample {orig} duplicated");
                seen[orig] = true;
            }
        });
    }

    /// Satellite conformance: under every impairment kind, the streaming
    /// decoders still agree with their batch twins event for event —
    /// same packets, same payloads, in the same order. The impairment
    /// layer sits before the decoder, so both paths see identical
    /// samples and must stay bit-compatible no matter how mangled the
    /// stream is.
    #[test]
    fn streaming_equals_batch_under_every_impairment_kind() {
        let indoor = indoor();
        let outdoor = outdoor();
        let indoor_swing = {
            let (lo, hi) = indoor.run_clean().minmax();
            hi - lo
        };
        let outdoor_swing = {
            let (lo, hi) = outdoor.run_clean().minmax();
            hi - lo
        };
        let rival = Scenario::indoor_bench(Packet::from_bits("01").unwrap(), 0.05, 0.20);
        type MakeStack = fn(f64, f64, &Scenario) -> ImpairmentStack;
        let kinds: Vec<(&str, f64, MakeStack)> = vec![
            ("burst_noise", indoor_swing, |sev, swing, _| {
                ImpairmentStack::clean().with(BurstNoise::with_severity(sev, swing))
            }),
            ("interference", indoor_swing, |sev, swing, rival| {
                ImpairmentStack::clean().with(Interference::from_scenario(rival, sev * swing))
            }),
            ("dropout", indoor_swing, |sev, _, _| {
                ImpairmentStack::clean().with(Dropout::with_severity(sev))
            }),
            ("jitter", indoor_swing, |sev, _, _| {
                ImpairmentStack::clean().with(Jitter::with_severity(sev, 94.0))
            }),
        ];
        cases(2, 0xA75, |rng, i| {
            let seed = rng.gen::<u64>();
            let sev = rng.gen_range(0.2..1.0);
            for (kind, _, make) in &kinds {
                // Indoor: adaptive batch vs streaming, full event parity.
                let stack = make(sev, indoor_swing, &rival);
                let trace = indoor.run_impaired(seed, &stack);
                let cfg = AdaptiveDecoder::default().with_expected_bits(2);
                let batch = cfg.decode(&trace);
                let (lo, hi) = trace.minmax();
                let mut dec =
                    StreamingDecoder::with_scale(cfg.clone(), trace.sample_rate_hz(), lo, hi);
                let events =
                    palc_lab::core::stream::drain_events(&mut dec, trace.samples(), |_| false);
                let streamed: Vec<_> = events
                    .iter()
                    .filter_map(|ev| match ev {
                        DecodeEvent::Packet(p) => Some(Ok(p.clone())),
                        DecodeEvent::Reject(e) => Some(Err(e.clone())),
                        _ => None,
                    })
                    .collect();
                match (&batch, streamed.first()) {
                    (Ok(b), Some(Ok(s))) => {
                        assert_eq!(b.symbols, s.symbols, "case {i} {kind} seed {seed}");
                        assert_eq!(b.payload, s.payload, "case {i} {kind} seed {seed}");
                        assert_eq!(
                            b.tau_t.to_bits(),
                            s.tau_t.to_bits(),
                            "case {i} {kind} seed {seed}"
                        );
                    }
                    (Err(b), Some(Err(s))) => {
                        assert_eq!(b, s, "case {i} {kind} seed {seed}: errors differ")
                    }
                    (b, s) => {
                        panic!("case {i} {kind} seed {seed}: batch {b:?} vs streamed {s:?}")
                    }
                }

                // Outdoor: the two-phase pair, first terminal event.
                let stack = make(sev, outdoor_swing, &rival);
                let trace = outdoor.run_impaired(seed, &stack);
                let cfg = TwoPhaseDecoder::new(CarModel::volvo_v40(), 0.10, 2);
                let batch = cfg.decode(&trace);
                let (lo, hi) = trace.minmax();
                let mut dec =
                    StreamingTwoPhase::with_scale(cfg.clone(), trace.sample_rate_hz(), lo, hi);
                let events =
                    palc_lab::core::stream::drain_events(&mut dec, trace.samples(), |_| false);
                let streamed = events.iter().find_map(|ev| match ev {
                    DecodeEvent::Packet(p) => Some(Ok(p.clone())),
                    DecodeEvent::Reject(e) => Some(Err(e.clone())),
                    _ => None,
                });
                match (&batch, &streamed) {
                    (Ok(b), Some(Ok(s))) => {
                        assert_eq!(b.symbols, s.symbols, "case {i} {kind} outdoor seed {seed}");
                        assert_eq!(b.payload, s.payload, "case {i} {kind} outdoor seed {seed}");
                    }
                    (Err(b), Some(Err(s))) => {
                        assert_eq!(b, s, "case {i} {kind} outdoor seed {seed}")
                    }
                    (b, s) => {
                        panic!("case {i} {kind} outdoor seed {seed}: batch {b:?} vs streamed {s:?}")
                    }
                }
            }
        });
    }

    /// The erasure-run crash regression: a dropout-stretched τt used to
    /// put the first post-lock symbol window before the smoothed
    /// history's retained base, panicking `SmoothBuf::get`. The exact
    /// trace that found it must decode (to anything) without panicking.
    #[test]
    fn streaming_decoder_survives_long_erasure_runs() {
        let sc = Scenario::ceiling_office(Packet::from_bits("10").unwrap(), 0.03, 500.0);
        let stack = ImpairmentStack::clean().with(Dropout::with_severity(0.5));
        let cfg = AdaptiveDecoder { smooth_window_s: 0.012, ..AdaptiveDecoder::default() }
            .with_expected_bits(2);
        for seed in 0..4u64 {
            let trace = sc.run_impaired(seed, &stack);
            let mut dec = StreamingDecoder::new(cfg.clone(), trace.sample_rate_hz());
            let events = palc_lab::core::stream::drain_events(&mut dec, trace.samples(), |_| false);
            assert!(!events.is_empty(), "seed {seed}: stream produced no events at all");
        }
    }
}

// ---------------- Decode server: replay, determinism, quarantine ----------

mod decode_server {
    use super::*;
    use palc_lab::core::channel::Scenario;
    use palc_lab::core::decode::AdaptiveDecoder;
    use palc_lab::core::server::{DecodeServer, ServerConfig, SessionConfig, SessionEvent};
    use palc_lab::core::stream::{DecodeEvent, PushDecoder, StreamingDecoder};

    fn indoor() -> Scenario {
        Scenario::indoor_bench(Packet::from_bits("10").unwrap(), 0.03, 0.20)
    }

    fn decoder() -> AdaptiveDecoder {
        AdaptiveDecoder::default().with_expected_bits(2)
    }

    /// An event stream collapsed to comparable atoms: the timestamp's
    /// exact bit pattern plus the event's full debug rendering — if two
    /// streams agree on this they agree byte-identically.
    fn fingerprint(events: &[SessionEvent]) -> Vec<(u64, String)> {
        events
            .iter()
            .filter_map(|e| match e {
                SessionEvent::Decode(te) => Some((te.time_s.to_bits(), format!("{:?}", te.event))),
                _ => None,
            })
            .collect()
    }

    /// Feeds one session in rng-sized chunks and drains it.
    fn feed_in_chunks(
        server: &DecodeServer,
        id: palc_lab::core::server::SessionId,
        samples: &[f64],
        rng: &mut StdRng,
    ) -> Vec<SessionEvent> {
        let mut offset = 0;
        while offset < samples.len() {
            let take = rng.gen_range(1..700).min(samples.len() - offset);
            server.feed_samples(id, &samples[offset..offset + take]).unwrap();
            offset += take;
        }
        server.close_and_drain(id).unwrap()
    }

    /// A single-session server replays `run_streaming` byte-identically:
    /// the same events with the same `f64` timestamps, regardless of how
    /// the samples were chunked across feed calls.
    #[test]
    fn single_session_replays_run_streaming_byte_identically() {
        let sc = indoor();
        let fs = sc.channel().frontend.sample_rate_hz();
        let seed = 7u64;
        let trace = sc.run(seed);
        let reference: Vec<(u64, String)> = sc.run_streaming(&[seed], &decoder())[0]
            .events
            .iter()
            .map(|te| (te.time_s.to_bits(), format!("{:?}", te.event)))
            .collect();
        assert!(
            reference.iter().any(|(_, e)| e.starts_with("Packet")),
            "reference stream must decode a packet"
        );
        cases(4, 0xD1, |rng, i| {
            let server = DecodeServer::new(ServerConfig::default().with_workers(2));
            let id =
                server.create_session(StreamingDecoder::new(decoder(), fs), SessionConfig::new(fs));
            let events = feed_in_chunks(&server, id, trace.samples(), rng);
            assert_eq!(fingerprint(&events), reference, "case {i}: replay diverged");
        });
    }

    /// N sessions fed the same samples produce identical per-session
    /// event streams no matter how the feeds interleave or how many
    /// workers serve them.
    #[test]
    fn session_streams_deterministic_under_interleaving() {
        let sc = indoor();
        let fs = sc.channel().frontend.sample_rate_hz();
        let trace = sc.run(3);
        let reference = {
            let server = DecodeServer::new(ServerConfig::default().with_workers(1));
            let id =
                server.create_session(StreamingDecoder::new(decoder(), fs), SessionConfig::new(fs));
            server.feed_samples(id, trace.samples()).unwrap();
            fingerprint(&server.close_and_drain(id).unwrap())
        };
        cases(3, 0xD2, |rng, i| {
            let workers = rng.gen_range(1..5);
            let server = DecodeServer::new(ServerConfig::default().with_workers(workers));
            let ids: Vec<_> = (0..4)
                .map(|_| {
                    server.create_session(
                        StreamingDecoder::new(decoder(), fs),
                        SessionConfig::new(fs),
                    )
                })
                .collect();
            // Interleave: walk the trace in chunks, feeding the sessions
            // in a shuffled order each round.
            let mut offset = 0;
            while offset < trace.samples().len() {
                let take = rng.gen_range(1..600).min(trace.samples().len() - offset);
                let mut order: Vec<usize> = (0..ids.len()).collect();
                for k in (1..order.len()).rev() {
                    order.swap(k, rng.gen_range(0..k + 1));
                }
                for &s in &order {
                    server.feed_samples(ids[s], &trace.samples()[offset..offset + take]).unwrap();
                }
                offset += take;
            }
            for (s, &id) in ids.iter().enumerate() {
                let events = server.close_and_drain(id).unwrap();
                assert_eq!(
                    fingerprint(&events),
                    reference,
                    "case {i}: session {s} of {workers}-worker server diverged"
                );
            }
        });
    }

    /// A decoder that panics partway through the stream.
    struct PanicAt {
        inner: StreamingDecoder,
        left: usize,
    }

    impl PushDecoder for PanicAt {
        fn push_sample(&mut self, sample: f64) -> Option<DecodeEvent> {
            assert!(self.left > 0, "property-injected decoder panic");
            self.left -= 1;
            self.inner.push_sample(sample)
        }
        fn poll_event(&mut self) -> Option<DecodeEvent> {
            self.inner.poll_event()
        }
        fn finish_stream(&mut self) -> Vec<DecodeEvent> {
            self.inner.finish_stream()
        }
    }

    /// A quarantined session's fault never perturbs its siblings: their
    /// streams stay byte-identical to a solo run, wherever the panic
    /// lands in the stream.
    #[test]
    fn quarantined_faults_never_perturb_siblings() {
        let sc = indoor();
        let fs = sc.channel().frontend.sample_rate_hz();
        let trace = sc.run(5);
        let reference = {
            let server = DecodeServer::new(ServerConfig::default().with_workers(1));
            let id =
                server.create_session(StreamingDecoder::new(decoder(), fs), SessionConfig::new(fs));
            server.feed_samples(id, trace.samples()).unwrap();
            fingerprint(&server.close_and_drain(id).unwrap())
        };
        cases(4, 0xD3, |rng, i| {
            let server = DecodeServer::new(ServerConfig::default().with_workers(2));
            let bad = server.create_session(
                PanicAt {
                    inner: StreamingDecoder::new(decoder(), fs),
                    left: rng.gen_range(1..trace.samples().len()),
                },
                SessionConfig::new(fs),
            );
            let good: Vec<_> = (0..3)
                .map(|_| {
                    server.create_session(
                        StreamingDecoder::new(decoder(), fs),
                        SessionConfig::new(fs),
                    )
                })
                .collect();
            let mut offset = 0;
            while offset < trace.samples().len() {
                let take = rng.gen_range(1..500).min(trace.samples().len() - offset);
                let chunk = &trace.samples()[offset..offset + take];
                let _ = server.feed_samples(bad, chunk); // rejected once faulted
                for &id in &good {
                    server.feed_samples(id, chunk).unwrap();
                }
                offset += take;
            }
            for (s, &id) in good.iter().enumerate() {
                let events = server.close_and_drain(id).unwrap();
                assert_eq!(fingerprint(&events), reference, "case {i}: sibling {s} perturbed");
            }
            let fault = server.close_and_drain(bad).unwrap();
            assert!(
                matches!(fault.last(), Some(SessionEvent::SessionFault { .. })),
                "case {i}: faulted session must end in SessionFault, got {:?}",
                fault.last()
            );
        });
    }
}
