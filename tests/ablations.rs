//! Ablation tests: each test disables one design choice the workspace
//! makes on top of the paper's plain description and shows the failure
//! the choice prevents. These pin *why* the implementation looks the way
//! it does (see DESIGN.md §5-6).

use palc_lab::core::channel::Scenario;
use palc_lab::core::decode::{AdaptiveDecoder, ThresholdMode};
use palc_lab::prelude::*;

/// Ablation 1 — persistence-based vs walk-based peak detection.
///
/// ADC quantisation produces equal-height twin peaks split by one-LSB
/// notches. Walk-based prominence reports both (each with full
/// prominence); the decoder would pick A and C on the *same* symbol.
#[test]
fn ablation_persistence_vs_walk_peaks() {
    use palc_lab::dsp::peaks::{find_peaks, find_peaks_persistence, PeakConfig};
    // A quantised flat-top symbol: two 0.826 tops around a 0.81 notch.
    let x = [0.0, 0.4, 0.826, 0.81, 0.826, 0.4, 0.0, 0.4, 0.826, 0.4, 0.0];
    let walk = find_peaks(&x, &PeakConfig { min_prominence: 0.25, min_distance: 1 });
    let pers = find_peaks_persistence(&x, 0.25);
    assert!(walk.len() > 2, "walk-based sees phantom twins: {walk:?}");
    assert_eq!(pers.len(), 2, "persistence sees the two physical symbols: {pers:?}");
}

/// Ablation 2 — symbol-timing tracker (resync) on long payloads.
///
/// The preamble-derived τt carries a few percent of error; over ≥6 bits
/// the fixed grid drifts off the symbols. The tracker must rescue a
/// payload that the rigid decoder (paper-literal windows) mis-reads.
#[test]
fn ablation_resync_rescues_long_payloads() {
    let bits = "011010";
    let scenario = Scenario::indoor_bench(Packet::from_bits(bits).unwrap(), 0.03, 0.25);
    let trace = scenario.run(42);
    let rigid =
        AdaptiveDecoder { resync_gain: 0.0, ..Default::default() }.with_expected_bits(bits.len());
    let tracking = AdaptiveDecoder::default().with_expected_bits(bits.len());
    let rigid_ok = rigid.decode(&trace).map(|o| o.payload.to_string() == bits).unwrap_or(false);
    let tracking_ok =
        tracking.decode(&trace).map(|o| o.payload.to_string() == bits).unwrap_or(false);
    assert!(tracking_ok, "tracker must decode the 6-bit payload");
    // The rigid decoder failing is the expected justification; if the
    // channel happens to be kind on this seed, the tracker must still not
    // be *worse*.
    assert!(tracking_ok >= rigid_ok);
}

/// Ablation 3 — midpoint vs paper-literal threshold on a raised valley.
///
/// On traces whose LOW level sits well above zero (lit rooms), comparing
/// window maxima against the raw swing τr (paper-literal) classifies
/// every window LOW; the midpoint form `rB + τr/2` is the robust reading.
#[test]
fn ablation_threshold_midpoint_vs_literal() {
    // Synthetic trace with valley at 0.5 and peaks at 1.0 (τr = 0.5 ⇒
    // literal threshold 0.5 < everything ⇒ all HIGH... after
    // normalisation the valley maps to 0 though, so build a trace whose
    // *normalised* valley stays raised: add a darker lead-in.
    let mut samples = vec![0.0; 50];
    for sym in ["H", "L", "H", "L", "H", "L", "H", "L"] {
        let level = if sym == "H" { 1.0 } else { 0.55 };
        for k in 0..50 {
            let t = k as f64 / 49.0;
            samples.push(0.5 + (level - 0.5) * (std::f64::consts::PI * t).sin());
        }
    }
    samples.extend(vec![0.0; 50]);
    let trace = Trace::new(samples, 100.0);

    let midpoint = AdaptiveDecoder::default().with_expected_bits(2);
    let literal =
        AdaptiveDecoder { threshold_mode: ThresholdMode::PaperLiteral, ..Default::default() }
            .with_expected_bits(2);

    let mid_ok = midpoint.decode(&trace).map(|o| o.payload.to_string() == "00").unwrap_or(false);
    assert!(mid_ok, "midpoint threshold reads the raised-valley trace");
    let lit_ok = literal.decode(&trace).map(|o| o.payload.to_string() == "00").unwrap_or(false);
    assert!(!lit_ok, "paper-literal threshold must fail here, motivating the midpoint form");
}

/// Ablation 4 — Sakoe–Chiba band for car identification.
///
/// Unconstrained DTW warps away the *position* differences (trunk vs.
/// hatch) that distinguish the two cars; the banded classifier keeps
/// them. Uses geometric signatures to stay fast.
#[test]
fn ablation_banded_dtw_for_car_shapes() {
    use palc_lab::core::classify::{DtwClassifier, TemplateDb, TEMPLATE_LEN};
    let volvo = CarModel::volvo_v40().reflectance_signature(256);
    let bmw = CarModel::bmw_3().reflectance_signature(256);
    let mut db = TemplateDb::new();
    db.add_samples("Volvo V40", &volvo);
    db.add_samples("BMW 3", &bmw);

    // A stretched Volvo probe (10% slower pass -> longer trace).
    let probe = palc_lab::dsp::resample_to_len(&volvo, 282);

    let banded = DtwClassifier::new(db.clone()).with_band(TEMPLATE_LEN / 20);
    let result = banded.classify_samples(&probe);
    assert_eq!(result.best().label, "Volvo V40");
    // The margin with a band must beat the unconstrained margin: the band
    // is what preserves the discriminating geometry.
    let free = DtwClassifier::new(db).classify_samples(&probe);
    assert!(
        result.margin() >= free.margin() * 0.99,
        "banded margin {} vs free {}",
        result.margin(),
        free.margin()
    );
}

/// Ablation 5 — AGC (gain calibration) in the scenario builder.
///
/// Without the calibration pass the LM358 gain is sized for the PD(G1)
/// indoor range; an outdoor RX-LED trace then spans a handful of ADC
/// codes and quantisation destroys the modulation.
#[test]
fn ablation_agc_preserves_outdoor_dynamic_range() {
    use palc_lab::optics::source::Sun;
    let mut scenario = Scenario::outdoor_car(
        CarModel::volvo_v40(),
        Some(Packet::from_bits("00").unwrap()),
        0.75,
        Sun::cloudy_noon(4),
    );
    let with_agc = scenario.run(2);
    // Disable the calibrated gain: reset to the stock amplifier.
    scenario.channel_mut().frontend.amplifier = palc_lab::frontend::Lm358::openvlc();
    let without_agc = scenario.run(2);

    let span = |t: &Trace| {
        let (lo, hi) = t.minmax();
        hi - lo
    };
    assert!(
        span(&with_agc) > 5.0 * span(&without_agc),
        "AGC must widen the used ADC range: {} vs {} codes",
        span(&with_agc),
        span(&without_agc)
    );
}

/// Ablation 6 — active-region cropping in the collision analyzer.
///
/// The packet-passage envelope is a large square transient; without
/// cropping, its harmonics dominate the spectrum and the two symbol
/// lines of a Case-3 collision are misread.
#[test]
fn ablation_collision_crop() {
    use palc_lab::core::collision::Occupancy;
    use palc_lab::dsp::fft::power_spectrum;
    use palc_lab::dsp::window::Window;
    // Two symbol tones inside a box envelope with long idle shoulders.
    let fs = 256.0;
    let n = 4096;
    let samples: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            let active = (4.0..12.0).contains(&t);
            if active {
                100.0
                    + 30.0 * (2.0 * std::f64::consts::PI * 2.0 * t).sin().signum()
                    + 30.0 * (2.0 * std::f64::consts::PI * 5.0 * t).sin().signum()
            } else {
                1.0
            }
        })
        .collect();
    let trace = Trace::new(samples, fs);

    // The analyzer (which crops) sees both lines.
    let report = CollisionAnalyzer::default().analyze(&trace);
    match &report.occupancy {
        Occupancy::Multiple { freqs_hz } => {
            assert!(freqs_hz.iter().any(|f| (f - 2.0).abs() < 0.5), "{freqs_hz:?}");
            assert!(freqs_hz.iter().any(|f| (f - 5.0).abs() < 0.5), "{freqs_hz:?}");
        }
        other => panic!("expected Multiple, got {other:?}"),
    }

    // Without cropping, the envelope pedestal injects massive low-band
    // power relative to the symbol lines.
    let uncropped = power_spectrum(trace.samples(), fs, Window::Hann);
    let low_band: f64 = (1..uncropped.bin_of_freq(1.0)).map(|k| uncropped.power[k]).sum();
    let line = uncropped.power[uncropped.bin_of_freq(2.0)];
    assert!(
        low_band > line,
        "envelope harmonics ({low_band:.0}) must dominate the uncropped line ({line:.0})"
    );
}
