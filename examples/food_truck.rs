//! The paper's Fig. 1 application: food trucks wear reflective ‘packets’
//! that encode their cargo type, and cheap roadside photodiode boxes read
//! them as the trucks drive past.
//!
//! This example exercises:
//! * codebook design — four cargo classes with maximised inter-code
//!   Hamming distance (Sec. 4.2's requirement);
//! * per-truck tags compiled at a roadside-friendly symbol width;
//! * two networked receivers fusing their detections (Sec. 6, item 5).
//!
//! ```sh
//! cargo run --release --example food_truck
//! ```

use palc_lab::core::channel::Scenario;
use palc_lab::core::fusion::{Detection, FusionCenter};
use palc_lab::phy::Codebook;
use palc_lab::prelude::*;

const CARGO: [&str; 4] = ["tacos", "coffee", "produce", "ice-cream"];

fn main() {
    // Four cargo classes, 4-bit codes, max-min Hamming distance.
    let book = Codebook::max_min_hamming(CARGO.len(), 4);
    println!("codebook (min Hamming distance {}): ", book.min_distance());
    for (name, code) in CARGO.iter().zip(book.codes()) {
        println!("  {name:>10} -> {code}");
    }

    // Each truck drives under two receivers 30 s apart; both decode and
    // report to the fusion centre.
    let fusion = FusionCenter::default();
    let mut detections = Vec::new();
    for (truck_idx, (_name, code)) in CARGO.iter().zip(book.codes()).enumerate() {
        let packet = Packet::new(code.clone());
        for (rx_id, time_offset) in [(1u32, 0.0), (2u32, 0.4)] {
            // 4 cm symbols, receiver at 30 cm above the truck roofline.
            let scenario = Scenario::indoor_bench(packet.clone(), 0.04, 0.30);
            let trace = scenario.run(100 + truck_idx as u64 * 10 + rx_id as u64);
            let decoder = AdaptiveDecoder::default().with_expected_bits(code.len());
            if let Ok(out) = decoder.decode(&trace) {
                detections.push(Detection {
                    receiver_id: rx_id,
                    time_s: truck_idx as f64 * 30.0 + time_offset,
                    payload: out.payload.clone(),
                    confidence: trace.modulation_depth(),
                });
            }
        }
    }

    // Fuse per-pass detections and map codes back to cargo classes.
    println!("\nfused events:");
    let mut correct = 0;
    for event in fusion.fuse(&detections) {
        let (idx, dist) = book.nearest(&event.payload);
        println!(
            "  t={:6.1}s  {} receivers agree {:.0}%  code {} -> {} (Hamming distance {})",
            event.time_s,
            event.receivers,
            event.agreement() * 100.0,
            event.payload,
            CARGO[idx],
            dist
        );
        correct += (dist == 0) as usize;
    }
    println!("\n{correct}/{} trucks identified exactly", CARGO.len());
    assert_eq!(correct, CARGO.len(), "all trucks must decode on the clean channel");
}
