//! Live decode: receivers that report packets *while the object passes*.
//!
//! Three networked receivers watch the same indoor deployment (one noise
//! seed each). Every receiver pipes its channel sampler straight into a
//! push-based [`StreamingDecoder`] — no trace is ever stored — and each
//! decoded packet is pushed into an online [`FusionStream`] the moment it
//! is emitted. The fused event is the deployment's answer, available
//! before the cart has even left the field of view.
//!
//! ```sh
//! cargo run --release --example live_decode
//! ```

use palc_lab::core::channel::Scenario;
use palc_lab::core::fusion::{Detection, FusionCenter, FusionStream};
use palc_lab::core::stream::DecodeEvent;
use palc_lab::prelude::*;

fn main() {
    let payload = "10";
    let packet = Packet::from_bits(payload).expect("binary payload");
    let scenario = Scenario::indoor_bench(packet, 0.03, 0.20);
    let decoder = AdaptiveDecoder::default().with_expected_bits(payload.len());

    // One live receiver per seed, decoding in parallel, in O(1) memory.
    let seeds = [11u64, 22, 33];
    let outcomes = scenario.run_streaming(&seeds, &decoder);

    // Narrate each receiver's event stream and feed an online fusion
    // centre as the packets arrive.
    let mut fusion = FusionStream::new(FusionCenter::default());
    let mut detections: Vec<Detection> = Vec::new();
    for (rx, outcome) in outcomes.iter().enumerate() {
        println!("receiver {rx} (seed {}):", outcome.seed);
        for ev in &outcome.events {
            match &ev.event {
                DecodeEvent::PreambleLocked(lock) => println!(
                    "  t={:.2}s  preamble locked (τr={:.2}, τt={:.3}s)",
                    ev.time_s, lock.tau_r, lock.tau_t
                ),
                DecodeEvent::Symbol { index, symbol } => {
                    if *index < 6 {
                        println!("  t={:.2}s  symbol {index}: {}", ev.time_s, symbol.letter());
                    }
                }
                DecodeEvent::Packet(p) => {
                    println!("  t={:.2}s  PACKET {}  (decoded mid-pass)", ev.time_s, p.notation())
                }
                DecodeEvent::Reject(e) => println!("  t={:.2}s  reject: {e}", ev.time_s),
                DecodeEvent::CarPreamble(_) => {}
            }
        }
        detections.extend(outcome.detections(rx as u32));
    }

    // Online fusion: detections go in as they were emitted; the fused
    // verdict comes out as soon as the cluster closes.
    detections.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    let mut fused = Vec::new();
    for d in detections {
        fused.extend(fusion.push(d));
    }
    fused.extend(fusion.flush());

    let event = fused.first().expect("the deployment must fuse one pass event");
    println!(
        "\nfused: payload {} from {} receivers ({} agreeing, support {:.2})",
        event.payload, event.receivers, event.agreeing, event.support
    );
    assert_eq!(event.payload.to_string(), payload);
    assert_eq!(event.receivers, seeds.len());
    println!("live round-trip OK: {payload}");
}
