//! Toll gantry: one car pass sharded across a receiver array.
//!
//! Three RX-LED readers hang from a gantry over the toll lane at
//! distinct poses — one slightly before the gantry line and across the
//! lane, one on the lane axis, one 1.2 m downstream on the far side.
//! The car (roof tag `00`) passes at 18 km/h; every receiver runs as its
//! own shard on the `SweepRunner`, owning a pose-relative `StaticField`
//! and `FootprintKernel` geometry tables over the *shared* scene objects
//! plus a push-based two-phase decoder. Decoded packets stream into an online
//! `FusionStream` as the shards emit them, and the fused verdict — one
//! vote per distinct receiver — is the gantry's answer.
//!
//! ```sh
//! cargo run --release --example toll_gantry
//! ```

use palc_lab::core::channel::{ReceiverPose, Scenario};
use palc_lab::core::fusion::FusionCenter;
use palc_lab::core::stream::StreamingTwoPhase;
use palc_lab::core::sweep::{ArrayReceiver, SweepRunner};
use palc_lab::core::vehicle::TwoPhaseDecoder;
use palc_lab::optics::source::Sun;
use palc_lab::prelude::*;

fn main() {
    let payload = "00";
    let packet = Packet::from_bits(payload).expect("binary payload");
    let car = CarModel::volvo_v40();
    let scenario = Scenario::outdoor_car(car.clone(), Some(packet), 0.75, Sun::cloudy_noon(9));
    let z = scenario.channel().receiver_z_m;

    // The gantry: staggered along the lane (x) and across it (y). The
    // downstream reader sees the same pass ~0.24 s after the lane-axis
    // one — the fusion window has to absorb exactly that.
    let receivers = [
        ArrayReceiver { id: 0, pose: ReceiverPose::new(0.0, -0.35, z), seed: 11 },
        ArrayReceiver { id: 1, pose: ReceiverPose::origin(z), seed: 22 },
        ArrayReceiver { id: 2, pose: ReceiverPose::new(1.2, 0.35, z), seed: 33 },
    ];

    let fs = scenario.channel().frontend.sample_rate_hz();
    let run = scenario.run_array_streaming_on(
        &SweepRunner::new(),
        &receivers,
        FusionCenter::default(),
        |_| StreamingTwoPhase::new(TwoPhaseDecoder::new(car.clone(), 0.10, payload.len()), fs),
    );

    for outcome in &run.outcomes {
        let rx = outcome.receiver;
        println!(
            "receiver {} at (x={:+.2} m, y={:+.2} m), seed {}:",
            rx.id, rx.pose.x_m, rx.pose.y_m, rx.seed
        );
        for det in outcome.detections() {
            println!(
                "  t={:.3}s  packet {}  (confidence {:.2})",
                det.time_s, det.payload, det.confidence
            );
        }
    }

    let event = run.fused.first().expect("the gantry must fuse one pass event");
    println!(
        "\nfused: payload {} from {} distinct receivers ({} agreeing, support {:.2}, t={:.2}s)",
        event.payload, event.receivers, event.agreeing, event.support, event.time_s
    );
    assert_eq!(run.fused.len(), 1, "one pass, one fused event");
    assert_eq!(event.payload.to_string(), payload);
    assert_eq!(event.receivers, receivers.len(), "every gantry reader votes exactly once");
    assert_eq!(event.agreeing, receivers.len());

    // The stagger is physical: detections must arrive in pose order.
    let first = |i: usize| run.outcomes[i].detections().next().expect("decoded").time_s;
    assert!(first(1) < first(2), "downstream reader sees the pass later");
    println!("gantry round-trip OK: {payload}");
}
