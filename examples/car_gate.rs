//! The paper's Sec. 5 application as a parking-gate product: a pole-
//! mounted dual receiver (PD + RX-LED) watches the lane, identifies the
//! car model from its optical signature, then decodes the roof tag.
//!
//! Exercises the full outdoor pipeline:
//! * receiver selection by ambient level (Sec. 4.4 / Fig. 11);
//! * car-shape long-duration preamble (Sec. 5.1 / Figs. 13-14);
//! * two-phase decode of the roof packet (Sec. 5.2-5.3 / Fig. 17).
//!
//! ```sh
//! cargo run --release --example car_gate
//! ```

use palc_lab::core::channel::Scenario;
use palc_lab::optics::source::Sun;
use palc_lab::prelude::*;

fn main() {
    // A cloudy-noon shift at the gate: ~6200 lux ambient.
    let ambient_lux = 6200.0;
    let selector = ReceiverSelector::openvlc_dual();
    let receiver = selector.select(ambient_lux);
    println!("ambient {ambient_lux} lux -> receiver {}", receiver.label());
    assert_eq!(receiver.label(), "LED", "daylight must select the RX-LED");

    // Calibration pass per known model (no tag) for the shape detector.
    let volvo_clean =
        Scenario::outdoor_car(CarModel::volvo_v40(), None, 0.75, Sun::cloudy_noon(3)).run_clean();
    let bmw_clean =
        Scenario::outdoor_car(CarModel::bmw_3(), None, 0.75, Sun::cloudy_noon(3)).run_clean();
    let detector =
        CarShapeDetector::from_traces(&[("Volvo V40", &volvo_clean), ("BMW 3", &bmw_clean)]);

    // Cars arrive with permit codes on their roofs.
    let arrivals = [
        (CarModel::volvo_v40(), "10", 1u64),
        (CarModel::bmw_3(), "01", 2u64),
        (CarModel::volvo_v40(), "11", 3u64),
    ];
    let mut granted = 0;
    for (car, permit, seed) in arrivals {
        let name = car.name;
        let packet = Packet::from_bits(permit).unwrap();
        let pass =
            Scenario::outdoor_car(car.clone(), Some(packet), 0.75, Sun::cloudy_noon(40 + seed))
                .run(seed);

        // Phase 0: which car is this?
        let Some((model, margin)) = detector.identify(&pass) else {
            println!("{name}: no car detected?!");
            continue;
        };
        // Phase 1+2: two-phase decode against the identified model.
        let geometry = if model == "Volvo V40" { CarModel::volvo_v40() } else { CarModel::bmw_3() };
        let decoder = TwoPhaseDecoder::new(geometry, 0.10, permit.len());
        match decoder.decode(&pass) {
            Ok(out) => {
                let ok = out.payload.to_string() == permit;
                granted += ok as usize;
                println!(
                    "{name}: identified as {model} (margin {margin:.2}), permit {} at {:.0} sym/s -> {}",
                    out.payload,
                    out.symbol_rate_hz(),
                    if ok { "GATE OPEN" } else { "mismatch" }
                );
            }
            Err(e) => println!("{name}: identified as {model}, decode failed: {e}"),
        }
    }
    println!("\n{granted}/3 cars admitted");
    assert_eq!(granted, 3, "all permits must decode under cloudy noon");
}
