//! Quickstart: the smallest end-to-end use of the passive channel.
//!
//! Encode two bits into a reflective tag, drive it under the receiver on
//! the paper's indoor bench, and decode the RSS trace — the Fig. 5
//! experiment in ~20 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use palc_lab::core::channel::Scenario;
use palc_lab::prelude::*;

fn main() {
    // 1. The data: two bits, as in the paper's evaluation.
    let payload = "10";
    let packet = Packet::from_bits(payload).expect("binary payload");
    println!("packet:   {}  (preamble + Manchester data)", packet.notation());

    // 2. The physical setup: 3 cm symbols (aluminium tape / black napkin),
    //    lamp and photodiode at 20 cm, cart moving at 8 cm/s.
    let scenario = Scenario::indoor_bench(packet.clone(), 0.03, 0.20);

    // 3. Run the channel (seeded -> reproducible) and look at the RSS.
    let trace = scenario.run(42);
    println!(
        "trace:    {} samples at {} Hz, modulation depth {:.2}",
        trace.len(),
        trace.sample_rate_hz(),
        trace.modulation_depth()
    );

    // 4. Decode with the paper's calibration-free adaptive thresholds.
    let decoded = AdaptiveDecoder::default()
        .with_expected_bits(payload.len())
        .decode(&trace)
        .expect("clean channel decodes");
    println!(
        "decoded:  {}  (τr = {:.2}, τt = {:.3} s)",
        decoded.notation(),
        decoded.tau_r,
        decoded.tau_t
    );
    assert_eq!(decoded.payload.to_string(), payload);
    println!("payload round-trip OK: {payload}");
}
