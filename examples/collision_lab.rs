//! Collision lab: two tagged objects share the receiver's field of view
//! (Sec. 4.3). When neither dominates, the time-domain decoder gives up —
//! but the frequency domain still reports *how many kinds* of object
//! passed, which is useful information for monitoring applications.
//!
//! ```sh
//! cargo run --release --example collision_lab
//! ```

use palc_lab::core::channel::{PassiveChannel, Resolution, Scenario};
use palc_lab::core::collision::Occupancy;
use palc_lab::frontend::Mcp3008;
use palc_lab::optics::source::{SkyCondition, Sun};
use palc_lab::prelude::*;
use palc_lab::scene::{Environment, MobileObject, Tag};

/// Two strips side by side inside the RX-LED's sensing footprint.
fn two_tag_scene(y_wide: f64, y_narrow: f64, seed: u64) -> Scenario {
    let wide = Tag::from_packet(&Packet::from_bits("00").unwrap(), 0.10).with_lateral(0.008);
    let narrow =
        Tag::from_packet(&Packet::from_bits("00000000").unwrap(), 0.04).with_lateral(0.008);
    let sun = Sun::new(1000.0, 35.0, SkyCondition::Cloudy { drift: 0.03 }, seed);
    let objects = vec![
        MobileObject::cart(wide, Trajectory::indoor_bench()).starting_at(-0.1).in_lane(y_wide),
        MobileObject::cart(narrow, Trajectory::indoor_bench()).starting_at(-0.1).in_lane(y_narrow),
    ];
    Scenario::custom(
        PassiveChannel {
            environment: Environment::parking_lot(),
            source: Box::new(sun),
            objects,
            receiver_z_m: 0.15,
            frontend: Frontend::new(
                OpticalReceiver::rx_led(),
                Mcp3008 { vref: 3.3, sample_rate_hz: 250.0 },
                0,
            ),
            resolution: Resolution { along_m: 0.004, lateral_slices: 9 },
        },
        (0.8 + 0.2) / 0.08 + 0.2,
    )
}

fn main() {
    let analyzer = CollisionAnalyzer::default();

    println!("--- one packet dominating the FoV ---");
    let trace = two_tag_scene(0.004, 0.015, 17).run(1);
    let report = analyzer.analyze(&trace);
    match &report.occupancy {
        Occupancy::Single { freq_hz } => {
            println!("single dominant symbol pattern at {freq_hz:.2} Hz — a readable channel")
        }
        other => println!("unexpected: {other:?}"),
    }

    println!("\n--- equal shares: a genuine collision ---");
    let trace = two_tag_scene(-0.0095, 0.0095, 17).run(2);
    let report = analyzer.analyze(&trace);
    match &report.occupancy {
        Occupancy::Multiple { freqs_hz } => {
            println!(
                "time-domain decode: {}",
                if report.decoded.is_some() { "succeeded (lucky)" } else { "failed, as expected" }
            );
            println!("FFT sees {} distinct object types at {:?} Hz", freqs_hz.len(), freqs_hz);
        }
        other => println!("unexpected: {other:?}"),
    }

    println!("\n--- empty lane ---");
    let mut idle = two_tag_scene(0.004, 0.015, 17);
    idle.channel_mut().objects.clear();
    let report = analyzer.analyze(&idle.run(3));
    println!("occupancy: {:?}", report.occupancy);
    assert_eq!(report.occupancy, Occupancy::Idle);
}
