//! The paper's hospital application (Sec. 1): *“Emergency, treatment, and
//! housekeeping trolleys could embed codes to inform their physical
//! locations in a hospital.”*
//!
//! Trolleys are pushed by hand — speed is jittery — under fluorescent
//! ceiling lights. This example shows the degradation path the paper
//! designs for:
//!
//! 1. try the adaptive-threshold decoder;
//! 2. when the jittered motion defeats it, fall back to DTW
//!    classification against clean templates (Sec. 4.2).
//!
//! ```sh
//! cargo run --release --example hospital_trolleys
//! ```

use palc_lab::core::channel::Scenario;
use palc_lab::phy::Codebook;
use palc_lab::prelude::*;
use palc_lab::scene::Tag;

const TROLLEYS: [&str; 3] = ["emergency", "treatment", "housekeeping"];

fn main() {
    let book = Codebook::max_min_hamming(TROLLEYS.len(), 3);
    println!("trolley codes (min distance {}):", book.min_distance());
    for (name, code) in TROLLEYS.iter().zip(book.codes()) {
        println!("  {name:>13} -> {code}");
    }

    // Clean templates from calibration passes at constant speed.
    let mut db = TemplateDb::new();
    for (name, code) in TROLLEYS.iter().zip(book.codes()) {
        let packet = Packet::new(code.clone());
        let trace = Scenario::ceiling_office(packet, 0.03, 400.0).run(7);
        db.add(*name, &trace);
    }
    let classifier = DtwClassifier::new(db);

    // Real passes: hand-pushed (jittered speed) under the same lights.
    let mut decoded_ok = 0;
    let mut classified_ok = 0;
    for (idx, (name, code)) in TROLLEYS.iter().zip(book.codes()).enumerate() {
        let packet = Packet::new(code.clone());
        let tag = Tag::from_packet(&packet, 0.03);
        let trajectory = Trajectory::Jittered {
            speed_mps: 0.08,
            jitter: 0.35,
            segment_m: 0.04,
            seed: 55 + idx as u64,
        };
        // Same ceiling-light geometry as the templates, jittered motion.
        let mut scenario = Scenario::ceiling_office(packet, 0.03, 400.0);
        {
            let ch = scenario.channel_mut();
            ch.objects.clear();
            ch.objects
                .push(palc_lab::scene::MobileObject::cart(tag, trajectory).starting_at(-0.08));
        }
        let trace = scenario.run(200 + idx as u64);

        let decoder = AdaptiveDecoder { smooth_window_s: 0.012, ..AdaptiveDecoder::default() }
            .with_expected_bits(code.len());
        match decoder.decode(&trace) {
            Ok(out) if &out.payload == code => {
                decoded_ok += 1;
                println!("{name:>13}: decoded directly ({})", out.notation());
            }
            other => {
                let why = match other {
                    Ok(out) => format!("mis-decode {}", out.payload),
                    Err(e) => e.to_string(),
                };
                let result = classifier.classify(&trace);
                let hit = result.best().label == *name;
                classified_ok += hit as usize;
                println!(
                    "{name:>13}: decoder failed ({why}); DTW fallback -> {} ({})",
                    result.best().label,
                    if hit { "correct" } else { "WRONG" }
                );
            }
        }
    }
    println!(
        "\n{decoded_ok} decoded directly, {classified_ok} recovered by DTW, {} lost",
        TROLLEYS.len() - decoded_ok - classified_ok
    );
    assert!(
        decoded_ok + classified_ok >= TROLLEYS.len() - 1,
        "the two-stage pipeline should recover nearly all trolleys"
    );
}
